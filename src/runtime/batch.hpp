// The chase-plan engine: batched execution of any p-chase shape.
//
// A ChaseSpec describes one measurement of any of the four chase shapes the
// tool uses — plain (size/line-size/latency style), amount (A/B/A on two
// cores), sharing (two logical spaces), dual-CU (AMD sL1d) — as pure data.
// run_chase_batch() runs a list of independent specs and returns one
// PChaseResult per spec, in spec order. Each chase executes on a Gpu replica
// (Gpu::fork) that is reset — caches flushed, noise stream re-seeded from
// (gpu seed, spec) via chase_noise_seed() — immediately before the chase, so
// a chase's result is a pure function of the owning Gpu's seed and its own
// spec. That makes the result vector byte-identical for every thread count,
// including the threads == 1 serial reference mode, which is what
// bench/discovery_hotpath and the sweep-engine tests assert.
//
// Purity also makes results cacheable: a ReplicaPool carries a memo keyed by
// the full spec, so a spec measured once costs zero cycles every time it
// recurs — across widenings of one sweep, across the coarse/refinement
// sweeps, and across benchmarks sharing the pool. Memo hits and intra-batch
// duplicates are resolved in spec order before any chase runs, so the
// accounting (which index carries the cycles) is a function of the batch
// contents alone, never of scheduling.
//
// The trade-off is explicit: batched chases do NOT share a noise stream with
// the owning Gpu (each is re-seeded from its spec), so routing a measurement
// through the batch changes its noise realisation relative to the
// serial-on-the-main-Gpu path. The benchmark layer accepts this — detection
// is robust by construction — in exchange for memoization and parallelism.
//
// Warm-up state, by contrast, IS shared — exactly. Warm-up passes consume no
// noise draws (see runtime/kernels.cpp), so the warm state a chase observes
// is a pure function of its warm walk, and a longer walk of the same WarmKey
// is an exact extension of a shorter one. The batch planner groups
// warm-compatible plain chases into chains sorted by walk length, executes
// each chain as chunked units that warm incrementally (snapshot/restore
// around each bounded timed pass), and records walk lengths + noise-free
// warm cycle totals in the pool's WarmStateEntry ledger. Booked cycles
// follow an engine- and schedule-independent rule: every chain member is
// charged the incremental warm cost over its predecessor (the previous
// member, or the longest prior ledger walk) plus its own timed pass, so a
// chain's warm cost telescopes to its longest walk — sharing removes the
// repeated warm-up from booked cycles AND from wall-clock. The rule consumes
// only deterministic cumulative totals, so for a fixed batch sequence the
// results are byte-identical across thread counts, chunk sizes and the
// compiled/reference engines; measurements (latencies, timed loads, hit
// levels) are additionally independent of batch composition and history.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/executor.hpp"
#include "runtime/kernels.hpp"
#include "sim/gpu.hpp"

namespace mt4g::runtime {

/// A thread-safe free list of owner forks. Forking a Gpu costs a full cache
/// reconstruction (milliseconds on models with large caches), but replicas
/// are interchangeable: every chase resets its replica (flush + reseed)
/// before running, and a flushed cache is observationally identical to a
/// fresh one. The discovery stage runner shares one cache per graph run so
/// stage substrates and chase replicas are forked once and recycled, instead
/// of once per stage. Acquire/release order never influences results —
/// that is exactly the reset discipline's guarantee.
class ReplicaCache {
 public:
  /// Pops a cached replica or forks a new one from @p owner. Cached
  /// replicas from a different path epoch (cache rebuild) are discarded.
  sim::Gpu acquire(const sim::Gpu& owner);
  /// Returns a replica to the free list.
  void release(sim::Gpu&& replica);

 private:
  std::mutex mutex_;
  std::uint64_t epoch_ = 0;
  std::vector<sim::Gpu> free_;
};

/// The four chase shapes of the benchmark suite (paper IV-A/F/G/H).
enum class ChaseKind : std::uint8_t {
  kPlain,    ///< warm-up + timed pass over one array
  kAmount,   ///< core A warms, core B warms a second array, core A timed
  kSharing,  ///< warm space A, warm space B, timed on A
  kDualCu,   ///< CU A warms, CU B warms a second array, CU A timed
};

/// One chase of any shape, as pure data. Equality spans every
/// result-relevant field, which is what makes specs usable as memo keys.
struct ChaseSpec {
  ChaseKind kind = ChaseKind::kPlain;
  PChaseConfig config{};    ///< the timed chase (and its own warm-up)
  PChaseConfig config_b{};  ///< kSharing only: the second warm-up chase
  std::uint32_t partner = 0;  ///< kAmount: core B; kDualCu: CU B
  std::uint64_t base_b = 0;   ///< kAmount/kDualCu: second array base

  bool operator==(const ChaseSpec&) const = default;

  static ChaseSpec plain(const PChaseConfig& config) {
    return ChaseSpec{ChaseKind::kPlain, config, {}, 0, 0};
  }
  static ChaseSpec amount(const PChaseConfig& config, std::uint32_t core_b,
                          std::uint64_t base_b) {
    return ChaseSpec{ChaseKind::kAmount, config, {}, core_b, base_b};
  }
  static ChaseSpec sharing(const PChaseConfig& config_a,
                           const PChaseConfig& config_b) {
    return ChaseSpec{ChaseKind::kSharing, config_a, config_b, 0, 0};
  }
  static ChaseSpec dual_cu(const PChaseConfig& config, std::uint32_t cu_b,
                           std::uint64_t base_b) {
    return ChaseSpec{ChaseKind::kDualCu, config, {}, cu_b, base_b};
  }
};

/// Executes one spec on @p gpu as-is: no replica, no reset, no memo. The
/// batch runner calls this on a reset replica; tests can call it directly.
PChaseResult run_chase(sim::Gpu& gpu, const ChaseSpec& spec);

/// Memo accounting of a ReplicaPool: hits are answered without simulating a
/// single load (the returned result carries total_cycles == 0).
struct ChaseMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  ///< specs that actually ran
};

/// Identity of one warm-up walk. Two plain chases with equal WarmKeys warm
/// the same address sequence through the same cache chain; because a longer
/// warm walk is an exact extension of a shorter one (the first `steps` loads
/// are identical) and warm-up consumes no noise draws, the warm state and
/// noise-free warm cycle total of any walk length can be derived
/// incrementally from a shorter one. Array size, record budget and the
/// timed-pass cap are deliberately absent: those are exactly the fields
/// chases may differ in while sharing a warm walk. Stride stays in the key —
/// a different stride is a different address sequence, and sharing across it
/// would change results.
struct WarmKey {
  sim::Space space = sim::Space::kGlobal;
  bool bypass_l1 = false;
  std::uint64_t base = 0;
  std::uint32_t stride_bytes = 0;
  std::uint32_t sm = 0;
  std::uint32_t core = 0;

  auto tie() const {
    return std::tie(space, bypass_l1, base, stride_bytes, sm, core);
  }
  bool operator==(const WarmKey& other) const { return tie() == other.tie(); }
  bool operator<(const WarmKey& other) const { return tie() < other.tie(); }
};

/// One recorded warm walk of a WarmKey: how many steps were walked, the
/// noise-free cycle total of walking them from cold, and (compiled engine
/// only, budget permitting) the sparse cache image at that point so a later
/// batch can resume the walk instead of re-warming from scratch. The numeric
/// fields are engine-independent and always recorded — the booking rule
/// depends on them; the snapshot only accelerates execution.
struct WarmStateEntry {
  std::uint64_t steps = 0;
  std::uint64_t cum_warm_cycles = 0;
  sim::PathSnapshot state;
  bool has_state = false;
};

/// Reusable replicas + chase-result memo for repeated batch calls against
/// the same owning Gpu. Both are rebuilt automatically when the owning Gpu
/// invalidated its compiled paths (cache rebuild via
/// set_l2_fetch_granularity) — the epoch tracks that, and memoized results
/// measured against the old cache geometry would be stale. A pool must not
/// be shared across different owning Gpus (Gpu::fork replicas of one owner,
/// which keep the owner's seed, count as the same owning Gpu).
struct ReplicaPool {
  std::uint64_t epoch = 0;
  std::vector<sim::Gpu> replicas;
  /// spec-seed hash -> (spec, result) entries; collisions resolved by the
  /// full spec comparison.
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<ChaseSpec, PChaseResult>>>
      memo;
  ChaseMemoStats memo_stats;
  /// Read-only parent memos, probed in order after this pool's own memo
  /// misses. The discovery stage graph points a stage's pool at the pools of
  /// its completed (transitive) dependency stages: those finished before
  /// this pool's stage started under every schedule, so which probes hit is
  /// a function of the graph alone — never of stage scheduling — and the
  /// upstream pools are immutable while this pool is live. Hits against an
  /// upstream memo are counted in this pool's memo_stats.
  std::vector<const ReplicaPool*> upstream;
  /// Optional shared fork cache: new replicas are acquired here instead of
  /// forked, and the stage runner returns them after the pool's stage
  /// completes. nullptr = fork directly (the pre-graph behaviour).
  ReplicaCache* replica_cache = nullptr;
  /// Warm-state ledger: per warm key, one numeric record per distinct walk
  /// length ever completed, sorted ascending by steps (snapshots attach to
  /// whichever records fit the byte budget). Booking prices a chase at the
  /// increment over the nearest shorter recorded walk, so even bisection
  /// patterns that revisit mid-range sizes book small deltas. Read at
  /// batch-plan time, updated once per batch at the join in deterministic
  /// chain order, and never consulted across pools (stage-local, so
  /// bench_threads scheduling cannot influence booking). Cleared with the
  /// memo on an epoch change.
  std::map<WarmKey, std::vector<WarmStateEntry>> warm_ledger;
  /// Resident bytes of ledger snapshots; inserts that would exceed the
  /// budget keep their (mandatory) numeric fields but drop the snapshot.
  std::uint64_t warm_state_bytes = 0;
  std::uint64_t warm_state_budget = 256ULL << 20;
  /// Sub-sweep chunking: how many chases of one warm chain execute per
  /// parallel unit. Each chunk re-warms independently from the best ledger
  /// snapshot and fans out through the batch executor, which is what lets a
  /// single size sweep parallelize under --sweep-threads. 0 disables
  /// chunking (a whole chain runs as one serial unit); results are
  /// byte-identical either way, only wall time changes.
  std::uint32_t warm_chunk_points = 8;
  /// Host nanoseconds spent resetting replicas (cache flush + noise reseed)
  /// across every batch run against this pool. Always accumulated (unlike
  /// the metrics-gated replica.reset_ns observe) so the stage runner can
  /// attribute reset time per stage in the report.
  std::uint64_t reset_ns = 0;
  /// Booked simulated cycles of every chase executed through this pool
  /// (memo hits excluded — they book zero), and the serially-dependent
  /// portion of them: per batch, the most expensive unit under the NOMINAL
  /// chunking (a constant, independent of warm_chunk_points), summed over
  /// batches (which run sequentially). serial_cycles is the Amdahl floor of
  /// the pool's chase work under unbounded sweep threads; the stage runner
  /// prices a stage's critical-path contribution with it. Both are pure
  /// functions of the batch sequence — never of threads, chunking, engine,
  /// or scheduling.
  std::uint64_t chase_cycles = 0;
  std::uint64_t serial_cycles = 0;
};

struct ChaseBatchOptions {
  /// Total parallelism including the calling thread; 1 = serial reference
  /// (strict spec order, no executor involved).
  std::uint32_t threads = 1;
  /// Executor to fan out on when threads > 1; nullptr = shared_executor().
  exec::Executor* executor = nullptr;
  /// Optional replica + memo cache reused across calls (see ReplicaPool).
  ReplicaPool* pool = nullptr;
  /// Answer repeated specs from the pool's memo (zero cycles) instead of
  /// re-running them. Disable for callers that need every spec executed.
  bool memoize = true;
};

/// Backwards-compatible name from the plain-chase-only engine.
using PChaseBatchOptions = ChaseBatchOptions;

/// Deterministic noise-stream seed of one batched chase: a stable mix of the
/// owning Gpu's construction seed and every result-relevant spec field.
/// Two specs differing in any field get statistically independent streams;
/// the same (seed, spec) always maps to the same stream. Exception:
/// PChaseConfig::max_timed_steps is deliberately not folded — capping the
/// timed pass does not change which loads the recorded prefix executes, so
/// capped and uncapped variants of one config agree on their prefix.
std::uint64_t chase_noise_seed(std::uint64_t gpu_seed,
                               const PChaseConfig& config);
std::uint64_t chase_noise_seed(std::uint64_t gpu_seed, const ChaseSpec& spec);

/// Runs every spec (see file comment for the execution model) and returns
/// results in spec order. The engine (compiled/reference) active on the
/// calling thread is propagated to the worker threads. Results answered from
/// the memo (or duplicated within the batch) carry from_cache == true and
/// total_cycles == 0, so cycle tallies never double-book simulated work.
std::vector<PChaseResult> run_chase_batch(
    sim::Gpu& gpu, std::span<const ChaseSpec> specs,
    const ChaseBatchOptions& options = {});

/// Plain-chase convenience wrapper: wraps each config in ChaseSpec::plain.
std::vector<PChaseResult> run_pchase_batch(
    sim::Gpu& gpu, std::span<const PChaseConfig> configs,
    const ChaseBatchOptions& options = {});

}  // namespace mt4g::runtime
