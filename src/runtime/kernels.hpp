// Kernel-style launches over the simulated GPU.
//
// Each function here corresponds to one GPU kernel of the real tool:
// fine-grained p-chase (paper IV-A, Listings 1-2), the two-core variant for
// the Amount benchmarks (IV-F), the two-space variant for Physical Sharing
// (IV-G), the two-CU variant for AMD sL1d sharing (IV-H), and the stream
// kernel for bandwidth (IV-I). Setup, configuration and evaluation run on the
// host; only the loads execute "on the GPU" (the simulator).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/bandwidth.hpp"
#include "sim/gpu.hpp"

namespace mt4g::runtime {

/// Which pass engine executes p-chase loads.
///
/// kCompiled is the production engine: each pass compiles one AccessPath and
/// runs batched through Gpu::run_pass (zero per-load allocation). kReference
/// keeps the per-load Gpu::access_traced loop; both must produce
/// bit-identical results for the same seed, which the equivalence tests and
/// bench/discovery_hotpath assert. Note the scope of that gate: it verifies
/// the batched execution (pass splitting, counter accumulation, latency
/// recording) against the one-load-at-a-time walk, but both engines share
/// the cache model and noise model underneath — a bug in those shared layers
/// would affect both sides identically and is covered by the behavioural
/// sim/cache/benchmark tests instead.
enum class PChaseEngine { kCompiled, kReference };

/// Engine used by the run_* kernels on this thread (default kCompiled).
PChaseEngine pchase_engine();
void set_pchase_engine(PChaseEngine engine);

/// RAII engine override for equivalence tests and benches. Thread-local, so
/// fleet workers on other threads are unaffected.
class ScopedPChaseEngine {
 public:
  explicit ScopedPChaseEngine(PChaseEngine engine)
      : previous_(pchase_engine()) {
    set_pchase_engine(engine);
  }
  ~ScopedPChaseEngine() { set_pchase_engine(previous_); }
  ScopedPChaseEngine(const ScopedPChaseEngine&) = delete;
  ScopedPChaseEngine& operator=(const ScopedPChaseEngine&) = delete;

 private:
  PChaseEngine previous_;
};

/// Configuration of one fine-grained p-chase execution.
struct PChaseConfig {
  sim::Space space = sim::Space::kGlobal;
  sim::AccessFlags flags{};
  std::uint64_t base = 0;          ///< array base address (from Gpu::alloc)
  std::uint64_t array_bytes = 0;   ///< array size; loads at base + i*stride
  std::uint32_t stride_bytes = 4;  ///< p-chase step
  std::uint32_t record_count = 256;  ///< store only the first N latencies
  bool warmup = true;              ///< initial untimed pass over the array
  sim::Placement where{};          ///< SM/CU + core executing the chase
  /// Cap on the number of timed-pass loads; 0 = walk the whole array.
  /// Load i's latency depends only on the loads before it, so capping never
  /// changes the recorded prefix — it only stops the walk once nothing more
  /// is recorded. Benchmarks that consume recorded latencies alone (the size
  /// sweep, the line-size grid) cap at record_count and skip the long tail;
  /// consumers of the full-pass served_by classification (the bisection
  /// `fits` predicate, amount/sharing verdicts) must leave this at 0.
  std::uint64_t max_timed_steps = 0;
  /// Independent-measurement index: bumping it moves the chase onto a fresh
  /// noise stream without changing what it measures. The sweep engine uses
  /// it to genuinely re-measure spike-flagged points (a re-run of the
  /// identical config would reproduce the identical stream).
  std::uint32_t resample = 0;

  bool operator==(const PChaseConfig&) const = default;
};

/// Result of one p-chase execution.
struct PChaseResult {
  /// First record_count per-load latencies of the timed pass, in cycles.
  std::vector<std::uint32_t> latencies;
  /// How many loads the timed pass executed in total.
  std::uint64_t timed_loads = 0;
  /// Which level served each timed load (whole pass, not just recorded).
  /// This is the simulator's noise-free ground truth; the auto-evaluation
  /// uses it only for the exact bisection refinements, never for the K-S.
  /// A fixed-size per-element array: the timed pass bumps one slot per load,
  /// so this must not be a node-based map.
  sim::ElementCounts served_by;
  /// Simulated GPU cycles spent (warm-up + timed), for run-time accounting.
  /// Zero when the result was answered from a chase memo (see from_cache).
  /// Warm-shared chases in a batch (see run_chase_batch) book only the
  /// incremental warm cost over their chain predecessor here — a chain's
  /// warm total telescopes to its longest walk. The accounting is a pure
  /// function of the batch sequence, never of threads or scheduling.
  std::uint64_t total_cycles = 0;
  /// Warm-up portion of total_cycles. Warm-up is noise-free, so this is a
  /// pure function of the chase config and the replica's prior cache state.
  std::uint64_t warm_cycles = 0;
  /// Set by the batch runner when this result came from its memo (or from an
  /// identical spec earlier in the same batch) instead of a fresh chase.
  bool from_cache = false;
};

/// One p-chase: optional warm-up pass, then a timed pass over the array.
PChaseResult run_pchase(sim::Gpu& gpu, const PChaseConfig& config);

/// Amount-benchmark kernel (paper IV-F, Fig. 3): core A warms its array,
/// core B warms a second array at @p base_b (landing in core B's segment, if
/// the SM has more than one), then core A re-runs its array timed.
PChaseResult run_amount_pchase(sim::Gpu& gpu, const PChaseConfig& config,
                               std::uint32_t core_b, std::uint64_t base_b);

/// Physical-sharing kernel (paper IV-G): warm array A in space A, warm array
/// B in space B, then run timed on array A. Same core throughout.
PChaseResult run_sharing_pchase(sim::Gpu& gpu, const PChaseConfig& config_a,
                                const PChaseConfig& config_b);

/// AMD sL1d sharing kernel (paper IV-H): two blocks pinned to two CUs; CU A
/// warms its scalar array, CU B warms a second array, CU A re-runs timed.
PChaseResult run_dual_cu_pchase(sim::Gpu& gpu, const PChaseConfig& config_a,
                                std::uint32_t cu_b, std::uint64_t base_b);

/// Scratchpad (Shared Memory / LDS) latency kernel: @p count loads, with the
/// same record semantics as the p-chase timed pass — only the first
/// @p record_count latencies are stored (and only that much is reserved).
PChaseResult run_scratchpad_chase(sim::Gpu& gpu, std::uint32_t count,
                                  std::uint32_t record_count = 256);

/// Stream bandwidth kernel (paper IV-I): returns achieved bytes/second.
double run_stream(sim::Gpu& gpu, const sim::StreamConfig& config);

/// Total loads a timed pass of @p config will execute.
std::uint64_t pchase_steps(const PChaseConfig& config);

}  // namespace mt4g::runtime
