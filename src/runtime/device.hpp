// HIP-like host runtime over the simulated GPU.
//
// Real MT4G consumes hipDeviceProp_t (mirroring cudaDeviceProp), the HSA
// runtime (AMD cache sizes) and KFD driver files (AMD cache line sizes).
// This header reproduces those three interfaces over sim::Gpu, preserving
// which attributes come "from an API" versus which must be benchmarked
// (paper Table I). The collectors consume only this layer, never sim::GpuSpec
// directly — that separation is what makes the benchmark results a genuine
// re-discovery rather than a spec read-back.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/gpu.hpp"

namespace mt4g::runtime {

/// Subset of hipDeviceProp_t / cudaDeviceProp that MT4G reads (paper III-A/B).
struct DeviceProp {
  std::string name;
  std::string vendor;              // "NVIDIA" / "AMD"
  std::string microarchitecture;
  std::string compute_capability;  // "9.0" / "gfx90a"
  double clock_mhz = 0;
  double memory_clock_mhz = 0;
  std::uint32_t memory_bus_bits = 0;
  std::uint64_t total_global_mem = 0;
  std::uint64_t shared_mem_per_block = 0;  // Shared Memory / LDS bytes
  std::uint64_t l2_cache_size = 0;  // API view: total on NVIDIA, per-XCD on AMD
  std::uint32_t warp_size = 0;
  std::uint32_t multi_processor_count = 0;
  std::uint32_t max_threads_per_block = 0;
  std::uint32_t max_threads_per_multiprocessor = 0;
  std::uint32_t max_blocks_per_multiprocessor = 0;
  std::uint32_t regs_per_block = 0;
  std::uint32_t regs_per_multiprocessor = 0;
  std::uint32_t xcd_count = 1;  // AMD accelerator complex dies
};

/// hipGetDeviceProperties equivalent.
DeviceProp get_device_prop(const sim::Gpu& gpu);

/// Cores per SM/CU come from a microarchitecture lookup table in the real
/// tool (paper III-B), not from the device props. Same here.
std::uint32_t cores_per_sm_lookup(const std::string& microarchitecture);

/// HSA runtime view (AMD only): cache sizes as the driver reports them.
struct HsaCacheInfo {
  std::uint64_t l2_size = 0;        // per-XCD instance size
  std::uint64_t l3_size = 0;        // 0 when absent
  std::uint32_t l2_instances = 0;   // XCD count
  std::uint32_t l3_instances = 0;
};
std::optional<HsaCacheInfo> hsa_cache_info(const sim::Gpu& gpu);

/// KFD driver view (AMD only): cache line sizes.
struct KfdCacheInfo {
  std::uint32_t l2_line = 0;
  std::uint32_t l3_line = 0;  // 0 when absent
};
std::optional<KfdCacheInfo> kfd_cache_info(const sim::Gpu& gpu);

/// Logical-to-physical CU id mapping (AMD only, paper III-B last bullet).
std::vector<std::uint32_t> logical_to_physical_cu(const sim::Gpu& gpu);

/// nvml-style MIG query (NVIDIA only): currently active MIG profile.
std::optional<sim::MigProfile> current_mig_profile(const sim::Gpu& gpu);

/// cudaDeviceSetLimit(cudaLimitMaxL2FetchGranularity) analogue (paper IV-D:
/// newer NVIDIA L2 caches have a configurable fetch granularity). Returns
/// false (no-op) on AMD GPUs, where the limit does not exist.
bool device_set_l2_fetch_granularity(sim::Gpu& gpu, std::uint32_t bytes);

}  // namespace mt4g::runtime
