// Cooperative cancellation: a wall-clock deadline threaded through
// discovery.
//
// The fleet scheduler arms one Deadline per job attempt (DiscoverOptions::
// deadline); the stage-graph runner checks it before every stage and raises
// TimeoutError when the budget is spent. Cancellation is cooperative and
// stage-granular — a stage that has started runs to completion, so the
// overshoot is bounded by the longest single stage, and a cancelled
// discovery never leaves a half-merged report (the throw happens before any
// merging).
//
// A default-constructed Deadline is unlimited and costs nothing to check
// beyond one branch; only armed deadlines read the clock.
#pragma once

#include <chrono>
#include <stdexcept>
#include <string>

namespace mt4g::core {

/// Raised by deadline checks. A distinct type so the scheduler can classify
/// the failure as a timeout (retryable, counted separately) rather than a
/// benchmark error.
class TimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Deadline {
 public:
  /// Unlimited: never expires, never reads the clock.
  Deadline() = default;

  /// Expires @p seconds of wall time from now; seconds <= 0 = unlimited.
  static Deadline after(double seconds) {
    Deadline deadline;
    if (seconds > 0.0) {
      deadline.limited_ = true;
      deadline.at_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(seconds));
    }
    return deadline;
  }

  bool limited() const { return limited_; }

  bool expired() const {
    return limited_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Throws TimeoutError when expired; @p what names the checkpoint.
  void check(const char* what) const {
    if (expired()) {
      throw TimeoutError(std::string("wall-clock deadline exceeded at ") +
                         what);
    }
  }

 private:
  bool limited_ = false;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace mt4g::core
