// Umbrella header: the MT4G public API.
//
// Typical use:
//   sim::Gpu gpu(sim::registry_get("H100-80"), /*seed=*/42);
//   core::TopologyReport report = core::discover(gpu);
//   std::cout << core::to_json_string(report);
//
// Thread-safety contract (load-bearing for the fleet orchestrator in
// fleet/fleet.hpp, which runs many discoveries concurrently):
//
//   - Concurrent discovery over *distinct* sim::Gpu instances is safe.
//     A Gpu owns all of its state — cache arrays, heap allocator, and the
//     Xoshiro256 noise streams are per-instance; nothing in sim/, stats/,
//     runtime/ or core/ keeps function-static or global mutable state.
//   - One sim::Gpu instance must not be shared between threads: access()
//     mutates cache state and RNG streams without internal locking. The same
//     holds for core::discover() — it drives the Gpu it is given.
//   - The shared singletons (sim::registry_get()'s model map, host table,
//     sim::all_dtypes()) are `static const`, built once under the C++11
//     magic-static guarantee and immutable afterwards; reading them from any
//     number of threads is safe.
//   - Reports, specs and options are plain values; distinct instances are
//     independent, and const access to a shared instance is safe.
#pragma once

#include "core/cache_config.hpp"      // IWYU pragma: export
#include "core/collector.hpp"         // IWYU pragma: export
#include "core/output/csv_output.hpp"       // IWYU pragma: export
#include "core/output/json_output.hpp"      // IWYU pragma: export
#include "core/output/markdown_output.hpp"  // IWYU pragma: export
#include "core/report.hpp"            // IWYU pragma: export
#include "sim/registry.hpp"           // IWYU pragma: export
