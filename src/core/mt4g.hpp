// Umbrella header: the MT4G public API.
//
// Typical use:
//   sim::Gpu gpu(sim::registry_get("H100-80"), /*seed=*/42);
//   core::TopologyReport report = core::discover(gpu);
//   std::cout << core::to_json_string(report);
#pragma once

#include "core/cache_config.hpp"      // IWYU pragma: export
#include "core/collector.hpp"         // IWYU pragma: export
#include "core/output/csv_output.hpp"       // IWYU pragma: export
#include "core/output/json_output.hpp"      // IWYU pragma: export
#include "core/output/markdown_output.hpp"  // IWYU pragma: export
#include "core/report.hpp"            // IWYU pragma: export
#include "sim/registry.hpp"           // IWYU pragma: export
