// The unified, vendor-agnostic topology report (paper Sec. III).
//
// Every attribute carries its provenance (API vs. microbenchmark vs.
// unavailable, mirroring the legend of Table I) and a confidence value — the
// significance the K-S test reached, or the alignment quality for segment
// counts. The report is the tool's public data model: the JSON/CSV/markdown
// emitters, the use-case integrations (perf model, sys-sage, GPUscout) and
// the validation benches all consume this struct.
#pragma once

#include <cstdint>
#include <optional>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "stats/descriptive.hpp"

namespace mt4g::core {

/// How an attribute value was obtained (legend of paper Table I).
enum class Provenance {
  kBenchmark,      ///< "!"        — reverse-engineered via microbenchmarks
  kApi,            ///< "!(API)"   — retrieved from a vendor interface
  kUnavailable,    ///< "#"        — the tool could not determine it
  kNotApplicable,  ///< "n/a"      — meaningless for this element
};

std::string provenance_symbol(Provenance provenance);

/// One reported attribute with provenance and confidence.
struct Attribute {
  Provenance provenance = Provenance::kNotApplicable;
  double value = 0.0;       ///< bytes, cycles, or bytes/second
  double confidence = 1.0;  ///< 0..1; K-S significance-derived where measured
  std::string note;         ///< qualifier such as ">64KiB"

  bool available() const {
    return provenance == Provenance::kBenchmark ||
           provenance == Provenance::kApi;
  }

  static Attribute benchmarked(double v, double conf = 1.0) {
    return Attribute{Provenance::kBenchmark, v, conf, {}};
  }
  static Attribute from_api(double v) {
    return Attribute{Provenance::kApi, v, 1.0, {}};
  }
  static Attribute unavailable(std::string why = {}) {
    return Attribute{Provenance::kUnavailable, 0.0, 0.0, std::move(why)};
  }
  static Attribute not_applicable() { return Attribute{}; }
};

/// Report row for one memory element (one line of paper Table I / III).
struct MemoryElementReport {
  sim::Element element = sim::Element::kL1;
  Attribute size;
  Attribute load_latency;
  Attribute read_bandwidth;
  Attribute write_bandwidth;
  Attribute cache_line;
  Attribute fetch_granularity;
  Attribute amount;
  bool amount_per_gpu = false;  ///< scope of `amount`: per GPU vs per SM/CU
  /// NVIDIA: logical spaces backed by the same physical cache ("RO,TX,L1");
  /// AMD sL1d: "CU id" (details in TopologyReport::cu_sharing). Empty = n/a.
  std::string shared_with;
  /// Full latency distribution statistics (paper IV-C: p50, p95, stddev...).
  stats::Summary latency_stats;
};

/// Paper Sec. III-A.
struct GeneralInfo {
  std::string gpu_name;  ///< registry key
  std::string vendor;
  std::string model;
  std::string microarchitecture;
  std::string compute_capability;
  double clock_mhz = 0;
  double memory_clock_mhz = 0;
  std::uint32_t memory_bus_bits = 0;
};

/// Paper Sec. III-B.
struct ComputeInfo {
  std::uint32_t num_sms = 0;
  std::uint32_t cores_per_sm = 0;
  std::uint32_t num_cores_total = 0;
  std::uint32_t warp_size = 0;
  std::uint32_t warps_per_sm = 0;
  std::uint32_t max_threads_per_block = 0;
  std::uint32_t max_threads_per_sm = 0;
  std::uint32_t max_blocks_per_sm = 0;
  std::uint32_t regs_per_block = 0;
  std::uint32_t regs_per_sm = 0;
  /// AMD only: logical index -> physical CU id.
  std::vector<std::uint32_t> cu_physical_ids;
};

/// AMD sL1d CU-sharing result (paper IV-H).
struct CuSharingInfo {
  bool available = false;
  std::string unavailable_reason;
  /// physical CU id -> physical ids sharing the same sL1d (incl. itself).
  std::map<std::uint32_t, std::vector<std::uint32_t>> peers;
};

/// Reduction-value series of one size benchmark (the data behind Fig. 2).
struct SizeSeries {
  sim::Element element = sim::Element::kL1;
  std::vector<std::uint64_t> array_sizes;
  std::vector<double> reduced_values;
  std::uint64_t change_point_bytes = 0;  ///< 0 when none found
};

/// Per-datatype compute throughput (paper Sec. VII extension): achieved
/// FLOPS/IOPS of the FMA-stream kernel at its best launch configuration.
struct ComputeThroughputReport {
  std::string dtype;             ///< "FP64", "FP32", ..., "TensorFP16"
  double achieved_ops_per_s = 0;
  std::uint32_t blocks = 0;      ///< launch configuration of the maximum
  std::uint32_t threads_per_block = 0;
};

/// Simulated cycles of one discovery stage (one entry per executed stage of
/// the pipeline graph, in stage-declaration order).
struct StageCycleReport {
  std::string stage;  ///< stage name, e.g. "L1.size"
  std::uint64_t cycles = 0;
  /// Host wall-clock time the stage took on its worker. Always measured
  /// (two clock reads per stage), but emitted into the report JSON only
  /// when WallMetricsReport::enabled — wall time differs run to run, so it
  /// must stay out of the byte-identity contract by default. The divergence
  /// between a stage's cycle share and its wall share is what
  /// bench/discovery_hotpath surfaces: it flags stages that are
  /// host-overhead-bound rather than simulation-bound.
  double wall_seconds = 0.0;
  /// Host wall time of this stage spent resetting replicas/substrates
  /// (cache flush + noise reseed), a subset of wall_seconds. Same
  /// always-measured, wall-gated-emission contract as wall_seconds. This is
  /// what exposes the tiny-array fetch-granularity stages as reset-bound
  /// (and verifies the touched-set flush fix in the bench artifact).
  double reset_seconds = 0.0;
};

/// One host metric aggregated over a discovery (src/obs/ registry delta).
struct WallMetricSample {
  std::string name;  ///< e.g. "memo.hits", "replica.fork_ns"
  std::string kind;  ///< "counter" | "gauge" | "histogram"
  double value = 0.0;
  std::uint64_t count = 0;  ///< histogram observations (0 otherwise)
};

/// Host wall-clock observability of one discovery. Opt-in: populated (and
/// serialised as meta.wall) only when the obs metrics registry was enabled
/// for the run, so default reports stay byte-identical across runs and
/// thread counts.
struct WallMetricsReport {
  bool enabled = false;
  double wall_seconds = 0.0;  ///< host wall time of core::discover()
  std::vector<WallMetricSample> samples;
};

/// The complete MT4G report for one GPU.
struct TopologyReport {
  GeneralInfo general;
  ComputeInfo compute;
  std::vector<MemoryElementReport> memory;
  CuSharingInfo cu_sharing;
  /// Filled when DiscoverOptions::measure_compute is set.
  std::vector<ComputeThroughputReport> compute_throughput;
  std::uint32_t benchmarks_executed = 0;
  double simulated_seconds = 0.0;  ///< accumulated simulated GPU time
  /// Chase-engine telemetry: outlier-triggered widening rounds and the
  /// per-benchmark cycle attribution (sweep vs line-size vs amount vs
  /// sharing vs bandwidth vs compute vs rest) across the discovery.
  /// bench/discovery_hotpath records these per model so the next
  /// algorithmic target stays visible.
  std::uint32_t sweep_widenings = 0;
  std::uint64_t sweep_cycles = 0;      ///< cycles in sweep-point chases
  std::uint64_t line_size_cycles = 0;  ///< cycles in line-size benchmarks
  std::uint64_t amount_cycles = 0;     ///< cycles in amount benchmarks
  std::uint64_t sharing_cycles = 0;    ///< cycles in sharing benchmarks
  /// Stream-kernel and compute-suite cycles (converted from simulated wall
  /// seconds at the spec clock). These stages used to bypass total_cycles
  /// and the attribution entirely, silently shrinking the breakdown.
  std::uint64_t bandwidth_cycles = 0;
  std::uint64_t compute_cycles = 0;
  std::uint64_t total_cycles = 0;      ///< all simulated cycles booked
  /// Chase-memo accounting across all stage pools: specs answered without
  /// simulating a load, and specs that actually ran.
  std::uint64_t chase_memo_hits = 0;
  std::uint64_t chase_memo_misses = 0;
  /// Per-stage cycles (stage-declaration order) and the longest dependency
  /// path through them, each stage priced at its serial depth (the chase
  /// work that cannot fan out across sub-sweep chunks, plus non-chase
  /// kernels): total_cycles / critical_path_cycles is the speedup available
  /// from benchmark-level (bench_threads) plus sweep-level (sweep_threads)
  /// concurrency together.
  std::vector<StageCycleReport> stage_cycles;
  std::uint64_t critical_path_cycles = 0;
  /// Host wall-clock metrics of this discovery (opt-in, see the struct).
  WallMetricsReport wall;
  std::vector<SizeSeries> series;  ///< populated when graphs are requested

  const MemoryElementReport* find(sim::Element element) const;
  MemoryElementReport* find(sim::Element element);
};

}  // namespace mt4g::core
