// AMD collector: orchestrates the microbenchmark suite over the AMD CDNA
// memory elements (paper Table I, lower half). AMD exposes much more through
// APIs — HSA for L2/L3 sizes and instance counts, KFD for their line sizes —
// so fewer benchmarks run here (paper Sec. V-A: ~15 vs ~35 on NVIDIA).
#include <algorithm>

#include "common/units.hpp"
#include "core/benchmarks/amount.hpp"
#include "core/benchmarks/bandwidth.hpp"
#include "core/benchmarks/fetch_granularity.hpp"
#include "core/benchmarks/latency.hpp"
#include "core/benchmarks/line_size.hpp"
#include "core/benchmarks/sharing.hpp"
#include "core/benchmarks/size.hpp"
#include "core/collector_detail.hpp"
#include "runtime/device.hpp"

namespace mt4g::core::detail {
namespace {

using sim::Element;

struct ElementState {
  std::uint32_t fg = 0;
  std::uint64_t size = 0;
};

/// vL1 / sL1d share the same benchmarked-attribute flow.
MemoryElementReport collect_amd_l1(CollectorContext& ctx, Element element,
                                   ElementState& state) {
  sim::Gpu& gpu = ctx.gpu;
  const Target target = target_for(sim::Vendor::kAmd, element);
  MemoryElementReport row;
  row.element = element;

  FgBenchOptions fg_options;
  fg_options.target = target;
  fg_options.record_count = ctx.options.record_count;
  const auto fg = run_fg_benchmark(gpu, fg_options);
  ctx.book(fg.cycles);
  state.fg = fg.found ? fg.granularity : 64;
  row.fetch_granularity = fg.found
                              ? Attribute::benchmarked(fg.granularity)
                              : Attribute::unavailable("no unimodal stride");

  SizeBenchOptions size_options;
  size_options.target = target;
  size_options.lower = 512;
  size_options.upper = 1024 * KiB;
  size_options.stride = state.fg;
  size_options.record_count = ctx.options.record_count;
  size_options.sweep_threads = ctx.options.sweep_threads;
  size_options.chase_pool = &ctx.chase_pool;
  const auto size = run_size_benchmark(gpu, size_options);
  ctx.book(size.cycles);
  ctx.book_sweep(size.widenings, size.sweep_cycles);
  if (size.found) {
    row.size = Attribute::benchmarked(static_cast<double>(size.exact_bytes),
                                      size.confidence);
    state.size = size.exact_bytes;
  } else {
    row.size = Attribute::unavailable("no change point");
  }
  if (ctx.options.collect_series && !size.sweep_sizes.empty()) {
    ctx.report.series.push_back(
        SizeSeries{element, size.sweep_sizes, size.reduced, size.exact_bytes});
  }

  LatencyBenchOptions latency_options;
  latency_options.target = target;
  latency_options.fetch_granularity = state.fg;
  latency_options.cache_bytes = state.size;
  const auto latency = run_latency_benchmark(gpu, latency_options);
  ctx.book(latency.cycles);
  row.load_latency = Attribute::benchmarked(latency.summary.mean);
  row.latency_stats = latency.summary;

  if (state.size != 0) {
    LineSizeBenchOptions line_options;
    line_options.target = target;
    line_options.cache_bytes = state.size;
    line_options.fetch_granularity = state.fg;
    line_options.threads = ctx.options.sweep_threads;
    line_options.chase_pool = &ctx.chase_pool;
    const auto line = run_line_size_benchmark(gpu, line_options);
    ctx.book(line.cycles);
    ctx.book_line_size(line.cycles);
    row.cache_line = line.found
                         ? Attribute::benchmarked(line.line_bytes,
                                                  line.confidence)
                         : Attribute::unavailable("inconclusive");
  } else {
    row.cache_line = Attribute::unavailable("cache size unknown");
  }
  row.read_bandwidth = Attribute::not_applicable();
  row.write_bandwidth = Attribute::not_applicable();
  return row;
}

}  // namespace

void collect_amd(CollectorContext& ctx) {
  sim::Gpu& gpu = ctx.gpu;
  const runtime::DeviceProp prop = runtime::get_device_prop(gpu);
  const auto hsa = runtime::hsa_cache_info(gpu);
  const auto kfd = runtime::kfd_cache_info(gpu);

  // --- Vector L1. ------------------------------------------------------------
  if (gpu.spec().has(Element::kVL1) && ctx.wants(Element::kVL1)) {
    ElementState state;
    auto row = collect_amd_l1(ctx, Element::kVL1, state);
    if (state.size != 0) {
      AmountBenchOptions amount_options;
      amount_options.target = target_for(sim::Vendor::kAmd, Element::kVL1);
      amount_options.cache_bytes = state.size;
      amount_options.stride = state.fg;
      amount_options.record_count = ctx.options.record_count;
      amount_options.threads = ctx.options.sweep_threads;
      amount_options.chase_pool = &ctx.chase_pool;
      const auto amount = run_amount_benchmark(gpu, amount_options);
      ctx.book(amount.cycles);
      ctx.book_amount(amount.cycles);
      row.amount =
          amount.available
              ? Attribute::benchmarked(amount.amount)
              : Attribute::unavailable("cache smaller than one stride");
    } else {
      row.amount = Attribute::unavailable("cache size unknown");
    }
    ctx.report.memory.push_back(row);
  }

  // --- Scalar L1 data cache + CU-id sharing. ----------------------------------
  if (gpu.spec().has(Element::kSL1D) && ctx.wants(Element::kSL1D)) {
    ElementState state;
    auto row = collect_amd_l1(ctx, Element::kSL1D, state);
    row.amount = Attribute::not_applicable();
    if (gpu.spec().cu_sharing_unavailable) {
      ctx.report.cu_sharing.available = false;
      ctx.report.cu_sharing.unavailable_reason =
          "virtualised GPU access prevents CU-pinned execution";
      row.shared_with = "unavailable";
    } else if (state.size != 0) {
      CuSharingBenchOptions sharing_options;
      sharing_options.sl1d_bytes = state.size;
      sharing_options.stride = state.fg;
      sharing_options.threads = ctx.options.sweep_threads;
      sharing_options.chase_pool = &ctx.chase_pool;
      const auto sharing = run_cu_sharing_benchmark(gpu, sharing_options);
      ctx.book(sharing.cycles);
      ctx.book_sharing(sharing.cycles);
      ctx.report.cu_sharing.available = true;
      ctx.report.cu_sharing.peers = sharing.peers;
      row.shared_with = "CU id";
    }
    ctx.report.memory.push_back(row);
  }

  // --- L2: size/line/amount from HSA + KFD, the rest benchmarked. -------------
  if (gpu.spec().has(Element::kL2) && ctx.wants(Element::kL2)) {
    const Target target = target_for(sim::Vendor::kAmd, Element::kL2);
    MemoryElementReport row;
    row.element = Element::kL2;
    row.size = Attribute::from_api(
        static_cast<double>(hsa ? hsa->l2_size : prop.l2_cache_size));
    if (kfd && kfd->l2_line != 0) {
      row.cache_line = Attribute::from_api(kfd->l2_line);
    }
    // One L2 per XCD (paper IV-F1): the amount comes from the API.
    row.amount = Attribute::from_api(hsa ? hsa->l2_instances : 1);
    row.amount_per_gpu = true;

    FgBenchOptions fg_options;
    fg_options.target = target;
    fg_options.record_count = ctx.options.record_count;
    const auto fg = run_fg_benchmark(gpu, fg_options);
    ctx.book(fg.cycles);
    const std::uint32_t fg_value = fg.found ? fg.granularity : 64;
    row.fetch_granularity = fg.found
                                ? Attribute::benchmarked(fg.granularity)
                                : Attribute::unavailable("no unimodal stride");

    LatencyBenchOptions latency_options;
    latency_options.target = target;
    latency_options.fetch_granularity = fg_value;
    const auto latency = run_latency_benchmark(gpu, latency_options);
    ctx.book(latency.cycles);
    row.load_latency = Attribute::benchmarked(latency.summary.mean);
    row.latency_stats = latency.summary;

    BandwidthBenchOptions bw_options;
    bw_options.target = Element::kL2;
    const auto bw = run_bandwidth_benchmark(gpu, bw_options);
    ctx.book_seconds(bw.seconds / 2);
    ctx.book_seconds(bw.seconds / 2);
    row.read_bandwidth = Attribute::benchmarked(bw.read_bytes_per_s);
    row.write_bandwidth = Attribute::benchmarked(bw.write_bytes_per_s);
    ctx.report.memory.push_back(row);
  }

  // --- L3 (CDNA3 Infinity Cache): size/line/amount via API; load latency and
  // fetch granularity are open gaps (paper Sec. III-C), bandwidth works. ------
  if (gpu.spec().has(Element::kL3) && ctx.wants(Element::kL3)) {
    MemoryElementReport row;
    row.element = Element::kL3;
    row.size = Attribute::from_api(static_cast<double>(hsa ? hsa->l3_size : 0));
    if (kfd && kfd->l3_line != 0) {
      row.cache_line = Attribute::from_api(kfd->l3_line);
    }
    row.amount = Attribute::from_api(hsa ? hsa->l3_instances : 1);
    row.amount_per_gpu = true;
    row.load_latency =
        Attribute::unavailable("CDNA3 L3 benchmarking not yet supported");
    row.fetch_granularity =
        Attribute::unavailable("CDNA3 L3 benchmarking not yet supported");

    BandwidthBenchOptions bw_options;
    bw_options.target = Element::kL3;
    const auto bw = run_bandwidth_benchmark(gpu, bw_options);
    ctx.book_seconds(bw.seconds / 2);
    ctx.book_seconds(bw.seconds / 2);
    row.read_bandwidth = Attribute::benchmarked(bw.read_bytes_per_s);
    row.write_bandwidth = Attribute::benchmarked(bw.write_bytes_per_s);
    ctx.report.memory.push_back(row);
  }

  // --- LDS. --------------------------------------------------------------------
  if (gpu.spec().has(Element::kLds) && ctx.wants(Element::kLds)) {
    MemoryElementReport row;
    row.element = Element::kLds;
    row.size =
        Attribute::from_api(static_cast<double>(prop.shared_mem_per_block));
    const auto latency = run_scratchpad_latency(gpu);
    ctx.book(latency.cycles);
    row.load_latency = Attribute::benchmarked(latency.summary.mean);
    row.latency_stats = latency.summary;
    ctx.report.memory.push_back(row);
  }

  // --- Device memory. ------------------------------------------------------------
  if (gpu.spec().has(Element::kDeviceMem) && ctx.wants(Element::kDeviceMem)) {
    MemoryElementReport row;
    row.element = Element::kDeviceMem;
    row.size = Attribute::from_api(static_cast<double>(prop.total_global_mem));

    LatencyBenchOptions latency_options;
    latency_options.target = target_for(sim::Vendor::kAmd, Element::kDeviceMem);
    // Step past the largest fill granularity in the chain (the CDNA3 L3
    // fills 128 B sectors on 256 B lines) so every cold load reaches DRAM.
    latency_options.fetch_granularity = 256;
    latency_options.cold = true;
    const auto latency = run_latency_benchmark(gpu, latency_options);
    ctx.book(latency.cycles);
    row.load_latency = Attribute::benchmarked(latency.summary.mean);
    row.latency_stats = latency.summary;

    BandwidthBenchOptions bw_options;
    bw_options.target = Element::kDeviceMem;
    bw_options.bytes = 1 * GiB;
    const auto bw = run_bandwidth_benchmark(gpu, bw_options);
    ctx.book_seconds(bw.seconds / 2);
    ctx.book_seconds(bw.seconds / 2);
    row.read_bandwidth = Attribute::benchmarked(bw.read_bytes_per_s);
    row.write_bandwidth = Attribute::benchmarked(bw.write_bytes_per_s);
    ctx.report.memory.push_back(row);
  }
}

}  // namespace mt4g::core::detail
