#include "core/benchmarks/amount.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "core/benchmarks/size.hpp"
#include "runtime/batch.hpp"

namespace mt4g::core {

AmountBenchResult run_amount_benchmark(sim::Gpu& gpu,
                                       const AmountBenchOptions& options) {
  if (options.cache_bytes == 0) {
    throw std::invalid_argument("amount benchmark: missing cache size");
  }
  AmountBenchResult out;
  const std::uint32_t cores = gpu.spec().cores_per_sm;
  // Arrays close to the cache size (7/8) guarantee eviction when the two
  // cores land on the same segment, while still fitting one segment alone.
  const std::uint64_t array_bytes =
      round_down(options.cache_bytes - options.cache_bytes / 8,
                 options.stride);
  if (array_bytes < options.stride) {
    // The cache is smaller than ~one stride (e.g. a tiny constL1 probed at a
    // coarse fetch granularity): the two-array eviction pattern cannot be
    // formed. Report unavailable instead of letting the p-chase validation
    // abort the whole discovery.
    out.available = false;
    return out;
  }

  runtime::PChaseConfig config;
  config.space = options.target.space;
  config.flags = options.target.flags;
  config.array_bytes = array_bytes;
  config.stride_bytes = options.stride;
  config.record_count = options.record_count;
  config.where = options.where;
  // Both arrays are allocated once and reused by every probe: per-probe
  // allocations would grow the simulated heap, making set mapping (and hence
  // the observed hit/miss pattern) depend on probe order.
  config.base = gpu.alloc(array_bytes, 256);
  const std::uint64_t base_b = gpu.alloc(array_bytes, 256);

  // The probes are independent A/B/A chases (each runs on a reset replica),
  // so they execute as one batch; the verdict walk below still stops at the
  // first hit, exactly like the serial early-exit loop did. The verdict
  // reads the full-pass served_by classification, so no timed-pass cap.
  std::vector<std::uint32_t> probe_cores;
  std::vector<runtime::ChaseSpec> specs;
  for (std::uint32_t core_b = 1; core_b < cores; core_b *= 2) {
    probe_cores.push_back(core_b);
    specs.push_back(runtime::ChaseSpec::amount(config, core_b, base_b));
  }
  runtime::ChaseBatchOptions batch;
  batch.threads = options.threads;
  batch.executor = options.executor;
  batch.pool = options.chase_pool;
  const auto results = runtime::run_chase_batch(gpu, specs, batch);
  // All probes executed (batched), so all their cycles are booked — also the
  // ones behind an early verdict, which the serial loop never ran.
  for (const auto& result : results) out.cycles += result.total_cycles;

  for (std::size_t i = 0; i < probe_cores.size(); ++i) {
    const bool still_hits =
        hit_fraction(results[i], options.target.element) > 0.5;
    out.probes.emplace_back(probe_cores[i], still_hits);
    if (still_hits) {
      // Core B sits behind a segment boundary: one segment spans core_b
      // cores at most, so the SM holds cores/core_b segments.
      out.amount = cores / probe_cores[i];
      return out;
    }
  }
  out.amount = 1;
  return out;
}

L2SegmentResult run_l2_segment_benchmark(sim::Gpu& gpu,
                                         std::uint64_t api_total_bytes,
                                         std::uint32_t fetch_granularity,
                                         sim::Placement where,
                                         std::uint32_t sweep_threads,
                                         runtime::ReplicaPool* chase_pool) {
  if (api_total_bytes == 0) {
    throw std::invalid_argument("l2 segment benchmark: missing API size");
  }
  L2SegmentResult out;
  SizeBenchOptions size_options;
  size_options.target = target_for(gpu.spec().vendor, sim::Element::kL2);
  size_options.lower = std::max<std::uint64_t>(api_total_bytes / 8, 1024);
  size_options.upper = api_total_bytes + api_total_bytes / 4;
  size_options.stride = fetch_granularity;
  size_options.sweep_threads = sweep_threads;
  size_options.chase_pool = chase_pool;
  size_options.where = where;
  const auto size_result = run_size_benchmark(gpu, size_options);
  out.cycles = size_result.cycles;
  out.widenings = size_result.widenings;
  out.sweep_cycles = size_result.sweep_cycles;
  if (!size_result.found) return out;
  out.measured_bytes = size_result.exact_bytes;

  // The segment count is an integer: align the measured size to the nearest
  // integer fraction of the API total, and report the distance as confidence.
  double best_error = 1.0;
  for (std::uint32_t k = 1; k <= 8; ++k) {
    const double fraction = static_cast<double>(api_total_bytes) / k;
    const double error =
        std::fabs(static_cast<double>(out.measured_bytes) - fraction) /
        fraction;
    if (error < best_error) {
      best_error = error;
      out.segments = k;
      out.segment_bytes = api_total_bytes / k;
    }
  }
  out.found = true;
  out.confidence = 1.0 - best_error;
  return out;
}

}  // namespace mt4g::core
