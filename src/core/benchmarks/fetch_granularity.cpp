#include "core/benchmarks/fetch_granularity.hpp"

#include <algorithm>
#include <limits>

#include "runtime/batch.hpp"

namespace mt4g::core {

bool sample_is_mixed(std::span<const std::uint32_t> latencies, double floor,
                     double gap) {
  if (latencies.empty()) return false;
  std::size_t high = 0;
  for (std::uint32_t v : latencies) {
    if (static_cast<double>(v) > floor + gap) ++high;
  }
  const double fraction =
      static_cast<double>(high) / static_cast<double>(latencies.size());
  // Outlier spikes can push a handful of samples high even in a unimodal
  // run; genuine hit/miss mixes involve at least a few percent on each side.
  return fraction > 0.02 && fraction < 0.98;
}

FgBenchResult run_fg_benchmark(sim::Gpu& gpu, const FgBenchOptions& options) {
  FgBenchResult out;
  // One chase per stride, all independent cold measurements: one batch. The
  // classifier consumes only the recorded latencies, so every chase caps its
  // timed pass at the record budget.
  std::vector<std::uint32_t> strides;
  std::vector<runtime::PChaseConfig> configs;
  for (std::uint32_t stride = 4; stride <= options.max_stride; stride += 4) {
    runtime::PChaseConfig config;
    config.space = options.target.space;
    config.flags = options.target.flags;
    config.stride_bytes = stride;
    config.array_bytes = std::max<std::uint64_t>(
        options.min_array_bytes,
        static_cast<std::uint64_t>(stride) * options.min_loads);
    config.base = gpu.alloc(config.array_bytes, 256);
    config.record_count = options.record_count;
    config.max_timed_steps = options.record_count;
    config.warmup = false;  // granularity only shows on a cold cache
    config.where = options.where;
    strides.push_back(stride);
    configs.push_back(config);
  }
  runtime::ChaseBatchOptions batch;
  batch.threads = options.threads;
  batch.executor = options.executor;
  batch.pool = options.chase_pool;
  const auto results = runtime::run_pchase_batch(gpu, configs, batch);

  // All runs share the global minimum latency as the hit-level floor, so
  // all-miss runs are not misclassified as unimodal hits.
  double floor = std::numeric_limits<double>::infinity();
  for (const auto& result : results) {
    out.cycles += result.total_cycles;
    for (std::uint32_t v : result.latencies) {
      floor = std::min(floor, static_cast<double>(v));
    }
  }
  for (std::size_t i = 0; i < strides.size(); ++i) {
    const bool mixed = sample_is_mixed(results[i].latencies, floor);
    out.mixed_by_stride.emplace_back(strides[i], mixed);
    if (!mixed && !out.found) {
      out.found = true;
      out.granularity = strides[i];
    }
  }
  return out;
}

}  // namespace mt4g::core
