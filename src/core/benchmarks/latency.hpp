// Load-latency benchmark (paper Sec. IV-C).
//
// One p-chase with a fixed array of 256 * fetch_granularity bytes, targeted
// at a specific memory element. Lower levels are avoided either with bypass
// bits (.cg / GLC) or, for Const L1.5, by sizing the array beyond the Const
// L1 capacity so the warm-up evicts it. Device memory is measured cold
// (flushed caches, no warm-up) so every load falls through. The mean is the
// headline value; the full Summary (p50/p95/stddev...) is reported alongside.
#pragma once

#include <cstdint>

#include "core/target.hpp"
#include "sim/gpu.hpp"
#include "stats/descriptive.hpp"

namespace mt4g::runtime {
struct ReplicaPool;
}

namespace mt4g::core {

struct LatencyBenchOptions {
  Target target;
  std::uint32_t fetch_granularity = 32;
  /// Array floor, used for Const L1.5 to guarantee Const L1 thrashing.
  std::uint64_t min_array_bytes = 0;
  /// Capacity of the benchmarked cache when known (from the size benchmark):
  /// the fixed array is capped below it so the warm chase actually hits. The
  /// real tool relies on 256 * fetch_granularity fitting; on small caches
  /// (e.g. a 1-2 KiB constant/sL1d cache) the cap is what keeps that true.
  std::uint64_t cache_bytes = 0;
  /// Cold measurement: flush all caches and skip the warm-up pass.
  bool cold = false;
  std::uint32_t record_count = 256;
  /// Independent chases pooled into one sample. Small caches cap the array
  /// below record_count loads, where a single noise outlier moves the mean
  /// by several percent; pooling a few independent streams keeps the
  /// headline mean stable across seeds.
  std::uint32_t resamples = 4;
  /// Parallelism of the resample chases (caller included); 1 = serial
  /// reference. Both produce byte-identical results.
  std::uint32_t threads = 1;
  /// Shared replica + chase-memo cache (see SizeBenchOptions::chase_pool).
  /// The chases run through the chase-plan engine either way — each on a
  /// reset replica with a (seed, spec) noise stream — so the measurement is
  /// independent of whatever ran on the Gpu before it.
  runtime::ReplicaPool* chase_pool = nullptr;
  sim::Placement where{};
};

struct LatencyBenchResult {
  /// Headline load latency: the outlier-fenced mean (stats::fenced_mean) of
  /// the pooled samples — stable across noise seeds where the raw mean of a
  /// small sample is not. The full distribution is in `summary`.
  double headline = 0.0;
  stats::Summary summary;         ///< over the recorded per-load latencies
  double hit_fraction_in_target = 0.0;  ///< sanity: loads served as intended
  std::uint64_t cycles = 0;
};

LatencyBenchResult run_latency_benchmark(sim::Gpu& gpu,
                                         const LatencyBenchOptions& options);

/// Shared Memory / LDS latency: scratchpads need no targeting machinery.
LatencyBenchResult run_scratchpad_latency(sim::Gpu& gpu,
                                          std::uint32_t count = 256);

}  // namespace mt4g::core
