#include "core/benchmarks/compute.hpp"

#include <algorithm>

namespace mt4g::core {

ComputeBenchResult run_compute_benchmark(sim::Gpu& gpu, sim::DType dtype) {
  ComputeBenchResult out;
  out.dtype = dtype;
  const sim::GpuSpec& spec = gpu.spec();
  if (sim::ops_per_cycle_per_sm(spec, dtype) <= 0.0) {
    return out;  // path absent (e.g. tensor engines on Pascal)
  }
  out.available = true;
  out.threads_per_block = spec.max_threads_per_block;
  const std::uint32_t optimum = spec.num_sms * spec.max_blocks_per_sm;
  // Sweep around the heuristic optimum like the bandwidth benchmark: the
  // occupancy ramp means undersubscription costs, oversubscription barely.
  for (const std::uint32_t blocks :
       {optimum / 4, optimum / 2, optimum, optimum * 2}) {
    if (blocks == 0) continue;
    const double rate = sim::compute_kernel_ops_per_second(
        gpu, dtype, blocks, out.threads_per_block);
    if (rate > out.achieved_ops_per_s) {
      out.achieved_ops_per_s = rate;
      out.best_blocks = blocks;
    }
  }
  return out;
}

std::vector<ComputeBenchResult> run_compute_suite(sim::Gpu& gpu) {
  std::vector<ComputeBenchResult> out;
  for (const sim::DType dtype : sim::all_dtypes()) {
    auto result = run_compute_benchmark(gpu, dtype);
    if (result.available) out.push_back(result);
  }
  return out;
}

}  // namespace mt4g::core
