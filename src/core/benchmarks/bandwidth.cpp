#include "core/benchmarks/bandwidth.hpp"

#include <algorithm>

#include "common/units.hpp"
#include "runtime/kernels.hpp"

namespace mt4g::core {

BandwidthBenchResult run_bandwidth_benchmark(
    sim::Gpu& gpu, const BandwidthBenchOptions& options) {
  BandwidthBenchResult out;
  const sim::GpuSpec& spec = gpu.spec();
  // Heuristic launch configuration (paper IV-I): enough blocks to keep every
  // SM's pipelines saturated with loads.
  out.blocks = gpu.visible_sms() * spec.max_blocks_per_sm;
  out.threads_per_block = spec.max_threads_per_block;

  std::uint64_t bytes = options.bytes;
  if (bytes == 0) {
    const auto& element = spec.at(options.target);
    bytes = std::max<std::uint64_t>(
        4 * element.size_bytes * std::max<std::uint32_t>(element.amount, 1),
        64 * MiB);
  }

  sim::StreamConfig config;
  config.target = options.target;
  config.blocks = out.blocks;
  config.threads_per_block = out.threads_per_block;
  config.bytes = bytes;

  config.write = false;
  out.read_bytes_per_s = runtime::run_stream(gpu, config);
  out.seconds += static_cast<double>(bytes) / out.read_bytes_per_s;

  config.write = true;
  out.write_bytes_per_s = runtime::run_stream(gpu, config);
  out.seconds += static_cast<double>(bytes) / out.write_bytes_per_s;
  return out;
}

}  // namespace mt4g::core
