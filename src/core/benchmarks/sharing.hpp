// Physical-sharing benchmarks (paper Sec. IV-G for NVIDIA logical spaces,
// Sec. IV-H for AMD sL1d CU groups).
//
// NVIDIA: logical memory spaces (global, texture, read-only, constant) may be
// backed by one physical cache or by separate ones. For each element pair we
// warm array A through space A, warm array B through space B, and re-run A
// timed: misses mean B's warm-up evicted A — same physical cache. The pair is
// ordered so the *smaller* cache is the tracked one (a 2 KiB constant array
// cannot evict a 238 KiB L1, but the converse works).
//
// AMD: the sL1d is shared between groups of 2-3 CUs, with fused-off
// neighbours leaving some CUs exclusive access. Two blocks pinned to two CUs
// run the same warm/warm/timed protocol over scalar arrays; MT4G makes no
// layout assumption and tests all CU pairs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/target.hpp"
#include "sim/gpu.hpp"

namespace mt4g::exec {
class Executor;
}

namespace mt4g::runtime {
struct ReplicaPool;
}

namespace mt4g::core {

/// NVIDIA pairwise sharing result.
struct SharingBenchResult {
  /// Per tested pair: (element X, element Y) -> physically shared?
  std::vector<std::tuple<sim::Element, sim::Element, bool>> pairs;
  std::uint64_t cycles = 0;

  /// True when the pair (in either order) was measured as shared.
  bool shared(sim::Element a, sim::Element b) const;
  /// Elements of @p universe sharing a physical cache with @p element.
  std::vector<sim::Element> group_of(sim::Element element) const;
};

struct SharingBenchOptions {
  /// Elements to test pairwise; each with its size and fetch granularity
  /// (from the earlier benchmarks).
  struct Entry {
    sim::Element element;
    std::uint64_t cache_bytes;
    std::uint32_t stride;
    /// Hard cap on array bytes in this element's space (64 KiB for constant).
    std::uint64_t space_limit = 0;  ///< 0 = unlimited
  };
  std::vector<Entry> entries;
  /// Parallelism of the pair chases (caller included); 1 = serial reference.
  /// Both produce byte-identical results.
  std::uint32_t threads = 1;
  /// Executor for threads > 1; nullptr = exec::shared_executor().
  exec::Executor* executor = nullptr;
  /// Shared replica + chase-memo cache (see SizeBenchOptions::chase_pool).
  runtime::ReplicaPool* chase_pool = nullptr;
  sim::Placement where{};
};

SharingBenchResult run_sharing_benchmark(sim::Gpu& gpu,
                                         const SharingBenchOptions& options);

/// AMD sL1d CU-id sharing (paper IV-H).
struct CuSharingBenchOptions {
  std::uint64_t sl1d_bytes = 0;
  std::uint32_t stride = 64;
  /// Parallelism / executor / cache of the CU-pair chases, as above.
  std::uint32_t threads = 1;
  exec::Executor* executor = nullptr;
  runtime::ReplicaPool* chase_pool = nullptr;
};

struct CuSharingBenchResult {
  /// physical CU id -> physical CU ids sharing its sL1d (incl. itself).
  std::map<std::uint32_t, std::vector<std::uint32_t>> peers;
  std::uint64_t cycles = 0;
};

CuSharingBenchResult run_cu_sharing_benchmark(
    sim::Gpu& gpu, const CuSharingBenchOptions& options);

}  // namespace mt4g::core
