#include "core/benchmarks/size.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "common/units.hpp"
#include "runtime/batch.hpp"
#include "stats/change_point.hpp"
#include "stats/descriptive.hpp"
#include "stats/outlier.hpp"
#include "stats/reduction.hpp"

namespace mt4g::core {
namespace {

struct Runner {
  sim::Gpu& gpu;
  const SizeBenchOptions& options;
  std::uint64_t base;
  runtime::ReplicaPool& pool;
  std::uint64_t cycles = 0;
  std::uint32_t exact_chases = 0;
  /// Prefix-fits verdict of every sweep row measured so far (size -> did all
  /// recorded loads stay within the tracked element). Feeds the phase-6
  /// bound seeding; only an approximation of the full-pass predicate, so
  /// phase 6 verifies every seed before trusting it.
  std::map<std::uint64_t, bool> sweep_fits;

  runtime::ChaseBatchOptions batch_options() const {
    runtime::ChaseBatchOptions batch;
    batch.threads = options.sweep_threads;
    batch.executor = options.sweep_executor;
    batch.pool = &pool;
    return batch;
  }

  /// @param full_pass phase-6 `fits` chases need the whole timed pass for
  ///        the exact served_by classification; everything else consumes
  ///        only the recorded prefix and caps the pass at the record budget.
  runtime::PChaseConfig config_for(std::uint64_t array_bytes,
                                   bool full_pass,
                                   std::uint32_t resample = 0) const {
    runtime::PChaseConfig config;
    config.space = options.target.space;
    config.flags = options.target.flags;
    config.base = base;
    config.array_bytes = array_bytes;
    config.stride_bytes = options.stride;
    config.record_count = options.record_count;
    config.warmup = true;
    config.where = options.where;
    config.max_timed_steps = full_pass ? 0 : options.record_count;
    config.resample = resample;
    return config;
  }

  runtime::PChaseResult chase(const runtime::PChaseConfig& config) {
    const runtime::ChaseSpec spec = runtime::ChaseSpec::plain(config);
    auto results =
        runtime::run_chase_batch(gpu, std::span(&spec, 1), batch_options());
    cycles += results[0].total_cycles;
    return std::move(results[0]);
  }

  /// Median recorded latency of one run — the jump detector for phase 1/2.
  double median_latency(std::uint64_t array_bytes) {
    const auto result = chase(config_for(array_bytes, /*full_pass=*/false));
    return stats::summarize(
               std::span<const std::uint32_t>(result.latencies))
        .p50;
  }

  /// Exact predicate: did every timed load stay within the tracked element?
  bool fits(std::uint64_t array_bytes) {
    ++exact_chases;
    const auto result = chase(config_for(array_bytes, /*full_pass=*/true));
    return hit_fraction(result, options.target.element) >= 0.999;
  }
};

}  // namespace

SizeBenchResult run_size_benchmark(sim::Gpu& gpu,
                                   const SizeBenchOptions& options) {
  if (options.stride == 0 || options.lower == 0 ||
      options.upper <= options.lower) {
    throw std::invalid_argument("size benchmark: bad search bounds");
  }
  SizeBenchResult out;
  const std::uint64_t lower = round_up(options.lower, options.stride);
  const std::uint64_t upper = round_up(options.upper, options.stride);
  runtime::ReplicaPool local_pool;
  Runner runner{gpu, options, gpu.alloc(upper + options.stride, 256),
                options.chase_pool ? *options.chase_pool : local_pool};

  // --- Phase 1: exponential doubling until the latency jumps. --------------
  const double base_latency = runner.median_latency(lower);
  const double jump_threshold = std::max(base_latency * 1.4,
                                         base_latency + 10.0);
  std::uint64_t lo = lower;
  std::uint64_t hi = 0;
  for (std::uint64_t size = lower * 2; size <= upper; size *= 2) {
    if (runner.median_latency(size) > jump_threshold) {
      hi = size;
      break;
    }
    lo = size;
  }
  if (hi == 0) {
    // Check the upper bound itself (the doubling may overshoot it).
    if (lo < upper && runner.median_latency(upper) > jump_threshold) {
      hi = upper;
    } else {
      out.upper_bound_hit = true;
      out.cycles = runner.cycles;
      out.exact_chases = runner.exact_chases;
      return out;
    }
  }

  // --- Phase 1b: binary-search narrowing to bound the sweep cost. ----------
  const std::uint64_t target_span =
      std::max<std::uint64_t>(static_cast<std::uint64_t>(options.stride) *
                                  options.max_sweep_points,
                              hi / 16);
  while (hi - lo > target_span) {
    const std::uint64_t mid = round_down(lo + (hi - lo) / 2, options.stride);
    if (mid <= lo || mid >= hi) break;
    if (runner.median_latency(mid) > jump_threshold) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  // --- Phases 2-4: sweep, outlier screening (with widening), K-S. ----------
  //
  // Incremental engine: rows are memoized by array size and the step is
  // frozen at the initial span, so a widening extends the same size grid and
  // only the newly exposed edge points (plus spike-flagged points, which get
  // fresh data via a bumped resample index) are measured — every clean row
  // is reused. Chases go through run_chase_batch: each runs on a reset
  // replica with a (seed, spec) noise stream, making the series invariant
  // under sweep_threads, and sizes already chased in an earlier phase or
  // sweep are answered from the chase memo at zero cycles.
  //
  // `refreshed` spans the coarse and refinement sweeps: a point re-measured
  // once keeps its bumped resample index, so a later sweep that re-requests
  // it reuses the fresh data instead of resurrecting the spiky original.
  std::set<std::uint64_t> refreshed;  // re-measured once (resample == 1)
  auto sweep_and_detect =
      [&](std::uint64_t sweep_lo, std::uint64_t sweep_hi,
          std::uint32_t max_points,
          SizeBenchResult& result) -> std::optional<stats::ChangePoint> {
    const std::uint64_t step = std::max<std::uint64_t>(
        options.stride,
        round_up((sweep_hi - sweep_lo) / std::max<std::uint32_t>(max_points, 1),
                 options.stride));
    std::map<std::uint64_t, std::vector<std::uint32_t>> rows;
    std::set<std::uint64_t> respike;    // erased as spiked, awaiting fresh data
    for (std::uint32_t attempt = 0;; ++attempt) {
      std::vector<std::uint64_t> sizes;
      for (std::uint64_t size = sweep_lo; size <= sweep_hi; size += step) {
        sizes.push_back(size);
      }
      std::vector<std::uint64_t> missing;
      for (const std::uint64_t size : sizes) {
        if (!rows.count(size)) missing.push_back(size);
      }
      if (!missing.empty()) {
        std::vector<runtime::ChaseSpec> specs;
        specs.reserve(missing.size());
        for (const std::uint64_t size : missing) {
          specs.push_back(runtime::ChaseSpec::plain(runner.config_for(
              size, /*full_pass=*/false,
              /*resample=*/refreshed.count(size) ? 1 : 0)));
        }
        auto measured = runtime::run_chase_batch(gpu, specs,
                                                 runner.batch_options());
        for (std::size_t i = 0; i < missing.size(); ++i) {
          runner.cycles += measured[i].total_cycles;
          result.sweep_cycles += measured[i].total_cycles;
          runner.sweep_fits[missing[i]] =
              hit_fraction(measured[i], options.target.element) >= 0.999;
          if (options.sweep_probe && !measured[i].from_cache) {
            options.sweep_probe(missing[i], respike.erase(missing[i]) > 0);
          }
          rows.emplace(missing[i], std::move(measured[i].latencies));
        }
      }
      std::vector<std::vector<std::uint32_t>> ordered;
      ordered.reserve(sizes.size());
      for (const std::uint64_t size : sizes) ordered.push_back(rows.at(size));
      const std::vector<double> reduced = stats::geometric_reduction(ordered);
      const auto screen = stats::screen_outliers(reduced);
      if (!screen.clean() && attempt < options.max_widenings) {
        bool changed = false;
        for (const std::size_t idx : screen.spike_indices) {
          // One fresh measurement per point: a point that stays spiky on its
          // second sample is genuine structure (or persistent disturbance);
          // despike() below neutralises it for the K-S either way, so
          // chasing it a third time buys nothing.
          if (!refreshed.insert(sizes[idx]).second) continue;
          respike.insert(sizes[idx]);
          rows.erase(sizes[idx]);
          changed = true;
        }
        // Widen on the frozen grid so existing rows stay reusable; the
        // clamped extension never leaves [lower, upper].
        if (screen.change_at_lower_edge && sweep_lo > lower) {
          const std::uint64_t room = (sweep_lo - lower) / step;
          sweep_lo -= std::min<std::uint64_t>(4, room) * step;
          changed = changed || room > 0;
        }
        if (screen.change_at_upper_edge && sweep_hi < upper) {
          const std::uint64_t room = (upper - sweep_hi) / step;
          sweep_hi += std::min<std::uint64_t>(4, room) * step;
          changed = changed || room > 0;
        }
        if (changed) {
          ++result.widenings;
          continue;
        }
        // Edges pinned at the search bounds and nothing flagged as a spike:
        // re-running would reproduce the identical series, so fall through
        // to detection with what we have.
      }
      const std::vector<double> clean = stats::despike(reduced);
      result.sweep_sizes = sizes;
      result.reduced = reduced;
      return stats::find_change_point(clean);
    }
  };

  auto change_point = sweep_and_detect(lo, hi, options.max_sweep_points, out);
  if (!change_point || change_point->index == 0) {
    out.cycles = runner.cycles;
    out.exact_chases = runner.exact_chases;
    return out;
  }
  out.found = true;
  out.detected_bytes = out.sweep_sizes[change_point->index - 1];
  out.confidence = change_point->confidence;

  // --- Phase 5: refinement sweep around the change point. ------------------
  const std::uint64_t coarse_step =
      out.sweep_sizes.size() > 1 ? out.sweep_sizes[1] - out.sweep_sizes[0]
                                 : options.stride;
  if (coarse_step > options.stride) {
    const std::uint64_t window_lo =
        out.detected_bytes > 2 * coarse_step + lower
            ? out.detected_bytes - 2 * coarse_step
            : lower;
    const std::uint64_t window_hi =
        std::min(upper, out.detected_bytes + 2 * coarse_step);
    SizeBenchResult refine;
    const auto refined = sweep_and_detect(window_lo, window_hi,
                                          options.refine_sweep_points, refine);
    out.widenings += refine.widenings;
    out.sweep_cycles += refine.sweep_cycles;
    if (refined && refined->index > 0) {
      out.detected_bytes = refine.sweep_sizes[refined->index - 1];
      out.confidence = std::max(out.confidence, refined->confidence);
      // Keep the coarse sweep as the reported series (it shows the full
      // cliff, like Fig. 2); the refinement only sharpens the boundary.
    }
  }

  // --- Phase 6: exact boundary via bisection on the fall-through predicate.
  {
    // The sweep rows already bracket the boundary: seed the bisection with
    // the nearest measured fitting size at or below the estimate and the
    // nearest measured missing size above it. The seeds come from recorded
    // prefixes, so both are verified with full-pass chases — the expansion
    // loops below remain as the fallback when a seed lied. Without seeding
    // (or without usable rows) the walk expands outward in coarse steps
    // first (the K-S estimate can be off by a sweep step), then bisects at
    // fetch-granularity resolution. The lower expansion must be able to
    // reach `lower` itself — the cache size can coincide with the search
    // bound (e.g. a 1 KiB cache probed from 1 KiB).
    const std::uint64_t expand = std::max<std::uint64_t>(
        coarse_step, static_cast<std::uint64_t>(options.stride));
    std::uint64_t fit_lo = out.detected_bytes;
    std::uint64_t miss_hi = 0;
    if (options.phase6_bounds_from_sweep) {
      std::uint64_t seed_lo = 0;
      for (const auto& [size, prefix_fits] : runner.sweep_fits) {
        if (prefix_fits && size <= out.detected_bytes && size > seed_lo) {
          seed_lo = size;
        } else if (!prefix_fits && size > out.detected_bytes &&
                   (miss_hi == 0 || size < miss_hi)) {
          miss_hi = size;
        }
      }
      if (seed_lo != 0) fit_lo = seed_lo;
    }
    // Expansion steps double: when the sweep window missed the boundary
    // entirely (a late phase-1 jump), a fixed coarse step would crawl over
    // the gap chase by chase; doubling reaches any distance in O(log)
    // chases and the bisection below recovers the precision.
    bool fit_lo_ok = runner.fits(fit_lo);
    for (std::uint64_t step = expand; !fit_lo_ok && fit_lo > lower;
         step *= 2) {
      fit_lo = fit_lo > lower + step ? fit_lo - step : lower;
      fit_lo_ok = runner.fits(fit_lo);
    }
    if (!fit_lo_ok) {
      // No size fits, down to and including `lower`: the K-S saw a latency
      // cliff of a deeper level (or noise), not this element's boundary.
      // Reporting `lower` would fabricate a fit that was never observed;
      // keep the change-point estimate and flag the condition.
      out.exact_bytes = out.detected_bytes;
      out.exact_fallback = true;
      out.cycles = runner.cycles;
      out.exact_chases = runner.exact_chases;
      return out;
    }
    if (miss_hi <= fit_lo) {
      miss_hi = std::max(out.detected_bytes, fit_lo + options.stride);
    }
    for (std::uint64_t step = expand; miss_hi < upper && runner.fits(miss_hi);
         step *= 2) {
      miss_hi = std::min(upper, miss_hi + step);
    }
    // Invariant: fits(fit_lo) && !fits(miss_hi); bisect on stride multiples.
    while (miss_hi - fit_lo > options.stride) {
      const std::uint64_t mid =
          round_down(fit_lo + (miss_hi - fit_lo) / 2, options.stride);
      if (mid <= fit_lo || mid >= miss_hi) break;
      if (runner.fits(mid)) {
        fit_lo = mid;
      } else {
        miss_hi = mid;
      }
    }
    out.exact_bytes = fit_lo;
  }

  out.cycles = runner.cycles;
  out.exact_chases = runner.exact_chases;
  return out;
}

}  // namespace mt4g::core
