#include "core/benchmarks/latency.hpp"

#include <algorithm>
#include <span>

#include "common/units.hpp"
#include "runtime/batch.hpp"

namespace mt4g::core {

LatencyBenchResult run_latency_benchmark(sim::Gpu& gpu,
                                         const LatencyBenchOptions& options) {
  LatencyBenchResult out;
  runtime::PChaseConfig config;
  config.space = options.target.space;
  config.flags = options.target.flags;
  config.stride_bytes = options.fetch_granularity;
  config.array_bytes = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(256) * options.fetch_granularity,
      options.min_array_bytes);
  if (options.cache_bytes != 0) {
    // Stay within ~3/4 of the capacity so the timed pass hits the target.
    const std::uint64_t cap = std::max<std::uint64_t>(
        round_down(options.cache_bytes - options.cache_bytes / 4,
                   options.fetch_granularity),
        static_cast<std::uint64_t>(options.fetch_granularity) * 8);
    config.array_bytes = std::min(config.array_bytes, cap);
  }
  config.base = gpu.alloc(config.array_bytes, 256);
  config.record_count = options.record_count;
  config.warmup = !options.cold;  // replicas start flushed, so cold = no warmup
  config.where = options.where;

  // Pool a few independent chases (fresh streams via the resample index):
  // the summary spans all recorded latencies in spec order, and the hit
  // fraction pools the served_by counts of every timed pass.
  std::vector<runtime::ChaseSpec> specs;
  for (std::uint32_t i = 0; i < std::max(options.resamples, 1u); ++i) {
    config.resample = i;
    specs.push_back(runtime::ChaseSpec::plain(config));
  }
  runtime::ChaseBatchOptions batch;
  batch.threads = options.threads;
  batch.pool = options.chase_pool;
  const auto results = runtime::run_chase_batch(gpu, specs, batch);

  std::vector<std::uint32_t> pooled;
  runtime::PChaseResult combined;
  for (const auto& result : results) {
    pooled.insert(pooled.end(), result.latencies.begin(),
                  result.latencies.end());
    combined.timed_loads += result.timed_loads;
    for (std::size_t i = 0; i < sim::kElementCount; ++i) {
      const auto element = static_cast<sim::Element>(i);
      combined.served_by[element] += result.served_by.at(element);
    }
    out.cycles += result.total_cycles;
  }
  out.summary = stats::summarize(std::span<const std::uint32_t>(pooled));
  out.headline = stats::fenced_mean(pooled);
  out.hit_fraction_in_target =
      hit_fraction(combined, options.target.element);
  return out;
}

LatencyBenchResult run_scratchpad_latency(sim::Gpu& gpu, std::uint32_t count) {
  LatencyBenchResult out;
  // The summary spans every load of the chase: pass the record budget
  // explicitly instead of relying on the kernel's default being large
  // enough (the kernel truncates like the p-chase timed pass).
  const auto result = runtime::run_scratchpad_chase(gpu, count, count);
  out.summary =
      stats::summarize(std::span<const std::uint32_t>(result.latencies));
  out.headline =
      stats::fenced_mean(std::span<const std::uint32_t>(result.latencies));
  out.hit_fraction_in_target = 1.0;
  out.cycles = result.total_cycles;
  return out;
}

}  // namespace mt4g::core
