#include "core/benchmarks/latency.hpp"

#include <algorithm>

#include "common/units.hpp"

namespace mt4g::core {

LatencyBenchResult run_latency_benchmark(sim::Gpu& gpu,
                                         const LatencyBenchOptions& options) {
  LatencyBenchResult out;
  runtime::PChaseConfig config;
  config.space = options.target.space;
  config.flags = options.target.flags;
  config.stride_bytes = options.fetch_granularity;
  config.array_bytes = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(256) * options.fetch_granularity,
      options.min_array_bytes);
  if (options.cache_bytes != 0) {
    // Stay within ~3/4 of the capacity so the timed pass hits the target.
    const std::uint64_t cap = std::max<std::uint64_t>(
        round_down(options.cache_bytes - options.cache_bytes / 4,
                   options.fetch_granularity),
        static_cast<std::uint64_t>(options.fetch_granularity) * 8);
    config.array_bytes = std::min(config.array_bytes, cap);
  }
  config.base = gpu.alloc(config.array_bytes, 256);
  config.record_count = options.record_count;
  config.warmup = !options.cold;
  config.where = options.where;
  if (options.cold) gpu.flush_caches();
  const auto result = runtime::run_pchase(gpu, config);
  out.summary =
      stats::summarize(std::span<const std::uint32_t>(result.latencies));
  out.hit_fraction_in_target = hit_fraction(result, options.target.element);
  out.cycles = result.total_cycles;
  return out;
}

LatencyBenchResult run_scratchpad_latency(sim::Gpu& gpu, std::uint32_t count) {
  LatencyBenchResult out;
  // The summary spans every load of the chase: pass the record budget
  // explicitly instead of relying on the kernel's default being large
  // enough (the kernel truncates like the p-chase timed pass).
  const auto result = runtime::run_scratchpad_chase(gpu, count, count);
  out.summary =
      stats::summarize(std::span<const std::uint32_t>(result.latencies));
  out.hit_fraction_in_target = 1.0;
  out.cycles = result.total_cycles;
  return out;
}

}  // namespace mt4g::core
