// Cache-size benchmark (paper Sec. IV-B).
//
// Workflow, exactly as the paper describes:
//   (1) identify a narrow search interval: exponential doubling from the
//       lower bound until the latency jumps, then binary-search narrowing;
//   (2) p-chase sweep across the interval, stepping by the fetch granularity
//       (coarsened only when the interval would need more sweep points than
//       max_sweep_points);
//   (3) outlier screening on the reduced series; widen the interval and
//       re-measure when a level shift touches the interval edge;
//   (4) Eq.-2 reduction + K-S change-point detection with a confidence value.
// After the K-S decision we refine the boundary to fetch-granularity
// resolution with a bisection on the "any timed load fell through" predicate
// — the same observable, pushed to its exact edge.
#pragma once

#include <cstdint>
#include <vector>

#include "core/target.hpp"
#include "sim/gpu.hpp"

namespace mt4g::core {

struct SizeBenchOptions {
  Target target;
  std::uint64_t lower = 1024;            ///< initial search space lower bound
  std::uint64_t upper = 1024 * 1024;     ///< initial search space upper bound
  std::uint32_t stride = 32;             ///< fetch granularity of the element
  std::uint32_t record_count = 512;      ///< latencies stored per p-chase run
  std::uint32_t max_sweep_points = 48;   ///< cap on sizes per sweep
  std::uint32_t max_widenings = 3;       ///< outlier-triggered re-measurements
  sim::Placement where{};
};

struct SizeBenchResult {
  bool found = false;
  std::uint64_t detected_bytes = 0;  ///< K-S change-point estimate
  std::uint64_t exact_bytes = 0;     ///< bisection-refined boundary
  double confidence = 0.0;           ///< 1 - p of the winning K-S split
  bool upper_bound_hit = false;      ///< no miss up to `upper` (">upper")
  std::uint32_t widenings = 0;       ///< outlier-triggered re-measurements
  std::vector<std::uint64_t> sweep_sizes;  ///< final sweep (Fig. 2 x-axis)
  std::vector<double> reduced;             ///< Eq.-2 values (Fig. 2 y-axis)
  std::uint64_t cycles = 0;          ///< simulated GPU cycles consumed
};

SizeBenchResult run_size_benchmark(sim::Gpu& gpu,
                                   const SizeBenchOptions& options);

}  // namespace mt4g::core
