// Cache-size benchmark (paper Sec. IV-B).
//
// Workflow, exactly as the paper describes:
//   (1) identify a narrow search interval: exponential doubling from the
//       lower bound until the latency jumps, then binary-search narrowing;
//   (2) p-chase sweep across the interval, stepping by the fetch granularity
//       (coarsened only when the interval would need more sweep points than
//       max_sweep_points);
//   (3) outlier screening on the reduced series; widen the interval and
//       re-measure when a level shift touches the interval edge;
//   (4) Eq.-2 reduction + K-S change-point detection with a confidence value.
// After the K-S decision we refine the boundary to fetch-granularity
// resolution with a bisection on the "any timed load fell through" predicate
// — the same observable, pushed to its exact edge.
//
// The sweep (phases 2-3 and the phase-5 refinement) runs on an incremental
// engine: every measured sweep point is memoized by array size, widening
// keeps the original step so widened bounds land on the same size grid, and
// an attempt re-measures only the newly exposed edge points plus the points
// stats::screen_outliers flagged as spikes — clean rows are reused as-is.
// Every chase of every phase goes through the chase-plan engine
// (runtime::run_chase_batch): each runs on a reset Gpu replica with a noise
// stream derived from (seed, spec), so the whole benchmark is byte-identical
// for every sweep_threads value, and sweep_threads > 1 fans the sweep chases
// over the shared executor. Sweep and phase-1 chases consume only their
// recorded latency prefix, so their timed pass is capped at the record
// budget (PChaseConfig::max_timed_steps); the phase-6 `fits` chases keep the
// full pass, which the exact predicate needs.
//
// Because chases are pure functions of (seed, spec), the ReplicaPool memo
// makes repeated specs free: a phase-1 probe that lands on the sweep grid,
// or a refinement point that coincides with the coarse grid, costs zero
// cycles the second time. Phase 6 additionally seeds its bisection bounds
// from the sweep rows — the nearest measured fitting/missing sizes around
// the change point — so the expansion loop's extra chases disappear (both
// seeds are still verified with full-pass chases before the bisection
// trusts them).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/target.hpp"
#include "sim/gpu.hpp"

namespace mt4g::exec {
class Executor;
}

namespace mt4g::runtime {
struct ReplicaPool;
}

namespace mt4g::core {

struct SizeBenchOptions {
  Target target;
  std::uint64_t lower = 1024;            ///< initial search space lower bound
  std::uint64_t upper = 1024 * 1024;     ///< initial search space upper bound
  std::uint32_t stride = 32;             ///< fetch granularity of the element
  std::uint32_t record_count = 512;      ///< latencies stored per p-chase run
  std::uint32_t max_sweep_points = 48;   ///< cap on sizes per sweep (initial
                                         ///< grid; widenings add edge points)
  /// Cap for the phase-5 refinement sweep. The refinement only has to pull
  /// the K-S estimate close enough that the phase-6 bisection starts near
  /// the boundary — the bisection delivers the exact edge — so it needs far
  /// fewer points than the coarse sweep (whose density feeds the K-S power).
  std::uint32_t refine_sweep_points = 16;
  std::uint32_t max_widenings = 3;       ///< outlier-triggered re-measurements
  /// Parallelism of the sweep-point measurements, caller included; 1 = the
  /// serial reference engine. Both produce byte-identical results.
  std::uint32_t sweep_threads = 1;
  /// Executor for sweep_threads > 1; nullptr = exec::shared_executor().
  /// Tests inject a dedicated pool here to force real thread interleaving
  /// regardless of the host's core count.
  exec::Executor* sweep_executor = nullptr;
  /// Replica + chase-memo cache shared with the caller (the collectors pass
  /// one per discovery, so benchmarks reuse replicas and memoized chases
  /// across each other); nullptr = a benchmark-local pool.
  runtime::ReplicaPool* chase_pool = nullptr;
  /// Seed the phase-6 bisection bounds from the sweep rows' prefix hit
  /// fractions (nearest measured fitting/missing sizes). Off = the original
  /// expand-then-bisect path; the flag exists so tests can compare the two
  /// paths' chase counts.
  bool phase6_bounds_from_sweep = true;
  /// Test probe: invoked once per sweep-point chase, after the measurement,
  /// in ascending size order within each attempt. @p remeasured is true when
  /// the point was re-chased because the screening flagged it as a spike.
  /// Points answered from the chase memo (e.g. a refinement point that
  /// coincides with the coarse grid) execute no chase and skip the probe.
  std::function<void(std::uint64_t size, bool remeasured)> sweep_probe;
  sim::Placement where{};
};

struct SizeBenchResult {
  bool found = false;
  std::uint64_t detected_bytes = 0;  ///< K-S change-point estimate
  std::uint64_t exact_bytes = 0;     ///< bisection-refined boundary
  double confidence = 0.0;           ///< 1 - p of the winning K-S split
  bool upper_bound_hit = false;      ///< no miss up to `upper` (">upper")
  /// Phase 6 could not establish fits(fit_lo): the downward expansion
  /// bottomed out at `lower` with no fitting size, so exact_bytes fell back
  /// to detected_bytes (the K-S estimate) instead of reporting `lower`.
  bool exact_fallback = false;
  std::uint32_t widenings = 0;       ///< outlier-triggered re-measurements
  std::vector<std::uint64_t> sweep_sizes;  ///< final sweep (Fig. 2 x-axis)
  std::vector<double> reduced;             ///< Eq.-2 values (Fig. 2 y-axis)
  std::uint64_t cycles = 0;          ///< simulated GPU cycles consumed
  std::uint64_t sweep_cycles = 0;    ///< cycles spent in sweep-point chases
  /// Full-pass chases the phase-6 exact refinement executed (expansion +
  /// bisection); the bounds-from-sweep seeding exists to shrink this.
  std::uint32_t exact_chases = 0;
};

SizeBenchResult run_size_benchmark(sim::Gpu& gpu,
                                   const SizeBenchOptions& options);

}  // namespace mt4g::core
