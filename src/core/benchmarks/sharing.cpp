#include "core/benchmarks/sharing.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/units.hpp"

namespace mt4g::core {

bool SharingBenchResult::shared(sim::Element a, sim::Element b) const {
  for (const auto& [x, y, is_shared] : pairs) {
    if ((x == a && y == b) || (x == b && y == a)) return is_shared;
  }
  return false;
}

std::vector<sim::Element> SharingBenchResult::group_of(
    sim::Element element) const {
  std::vector<sim::Element> group;
  for (const auto& [x, y, is_shared] : pairs) {
    if (!is_shared) continue;
    if (x == element) group.push_back(y);
    if (y == element) group.push_back(x);
  }
  return group;
}

SharingBenchResult run_sharing_benchmark(sim::Gpu& gpu,
                                         const SharingBenchOptions& options) {
  SharingBenchResult out;
  const sim::Vendor vendor = gpu.spec().vendor;

  auto array_bytes_for = [](const SharingBenchOptions::Entry& entry) {
    std::uint64_t bytes = entry.cache_bytes - entry.cache_bytes / 8;
    if (entry.space_limit != 0) bytes = std::min(bytes, entry.space_limit);
    return round_down(std::max<std::uint64_t>(bytes, entry.stride),
                      entry.stride);
  };

  for (std::size_t i = 0; i < options.entries.size(); ++i) {
    for (std::size_t j = i + 1; j < options.entries.size(); ++j) {
      // Track through the smaller cache: the larger one's warm-up can always
      // evict it, while the reverse may not reach far enough.
      const auto& tracked = options.entries[i].cache_bytes <=
                                    options.entries[j].cache_bytes
                                ? options.entries[i]
                                : options.entries[j];
      const auto& other = &tracked == &options.entries[i]
                              ? options.entries[j]
                              : options.entries[i];

      runtime::PChaseConfig config_a;
      const Target target_a = target_for(vendor, tracked.element);
      config_a.space = target_a.space;
      config_a.flags = target_a.flags;
      config_a.array_bytes = array_bytes_for(tracked);
      config_a.stride_bytes = tracked.stride;
      config_a.record_count = 512;
      config_a.where = options.where;

      runtime::PChaseConfig config_b;
      const Target target_b = target_for(vendor, other.element);
      config_b.space = target_b.space;
      config_b.flags = target_b.flags;
      config_b.array_bytes = array_bytes_for(other);
      config_b.stride_bytes = other.stride;
      config_b.record_count = 512;
      config_b.where = options.where;

      gpu.flush_caches();
      config_a.base = gpu.alloc(config_a.array_bytes, 256);
      config_b.base = gpu.alloc(config_b.array_bytes, 256);
      const auto result = runtime::run_sharing_pchase(gpu, config_a, config_b);
      out.cycles += result.total_cycles;
      const bool evicted = hit_fraction(result, tracked.element) < 0.5;
      out.pairs.emplace_back(options.entries[i].element,
                             options.entries[j].element, evicted);
    }
  }
  return out;
}

CuSharingBenchResult run_cu_sharing_benchmark(
    sim::Gpu& gpu, const CuSharingBenchOptions& options) {
  if (options.sl1d_bytes == 0) {
    throw std::invalid_argument("cu sharing benchmark: missing sL1d size");
  }
  CuSharingBenchResult out;
  const sim::GpuSpec& spec = gpu.spec();
  const std::uint64_t array_bytes = round_down(
      options.sl1d_bytes - options.sl1d_bytes / 8, options.stride);

  const Target target = target_for(sim::Vendor::kAmd, sim::Element::kSL1D);
  for (std::uint32_t cu_a = 0; cu_a < spec.num_sms; ++cu_a) {
    const std::uint32_t phys_a = spec.physical_cu(cu_a);
    out.peers[phys_a].push_back(phys_a);
  }
  for (std::uint32_t cu_a = 0; cu_a < spec.num_sms; ++cu_a) {
    for (std::uint32_t cu_b = cu_a + 1; cu_b < spec.num_sms; ++cu_b) {
      runtime::PChaseConfig config;
      config.space = target.space;
      config.flags = target.flags;
      config.array_bytes = array_bytes;
      config.stride_bytes = options.stride;
      config.record_count = 256;
      config.where = sim::Placement{cu_a, 0};

      gpu.flush_caches();
      config.base = gpu.alloc(array_bytes, 256);
      const std::uint64_t base_b = gpu.alloc(array_bytes, 256);
      const auto result =
          runtime::run_dual_cu_pchase(gpu, config, cu_b, base_b);
      out.cycles += result.total_cycles;
      if (hit_fraction(result, sim::Element::kSL1D) < 0.5) {
        const std::uint32_t phys_a = spec.physical_cu(cu_a);
        const std::uint32_t phys_b = spec.physical_cu(cu_b);
        out.peers[phys_a].push_back(phys_b);
        out.peers[phys_b].push_back(phys_a);
      }
    }
  }
  for (auto& [cu, peers] : out.peers) std::sort(peers.begin(), peers.end());
  return out;
}

}  // namespace mt4g::core
