#include "core/benchmarks/sharing.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/units.hpp"
#include "runtime/batch.hpp"

namespace mt4g::core {

bool SharingBenchResult::shared(sim::Element a, sim::Element b) const {
  for (const auto& [x, y, is_shared] : pairs) {
    if ((x == a && y == b) || (x == b && y == a)) return is_shared;
  }
  return false;
}

std::vector<sim::Element> SharingBenchResult::group_of(
    sim::Element element) const {
  std::vector<sim::Element> group;
  for (const auto& [x, y, is_shared] : pairs) {
    if (!is_shared) continue;
    if (x == element) group.push_back(y);
    if (y == element) group.push_back(x);
  }
  return group;
}

SharingBenchResult run_sharing_benchmark(sim::Gpu& gpu,
                                         const SharingBenchOptions& options) {
  SharingBenchResult out;
  const sim::Vendor vendor = gpu.spec().vendor;

  auto array_bytes_for = [](const SharingBenchOptions::Entry& entry) {
    std::uint64_t bytes = entry.cache_bytes - entry.cache_bytes / 8;
    if (entry.space_limit != 0) bytes = std::min(bytes, entry.space_limit);
    return round_down(std::max<std::uint64_t>(bytes, entry.stride),
                      entry.stride);
  };

  // The pair chases are independent (each runs on a reset replica), so they
  // execute as one batch. The eviction verdict reads the full-pass served_by
  // classification, so no timed-pass cap.
  struct Pair {
    sim::Element element_a;
    sim::Element element_b;
    sim::Element tracked;
  };
  std::vector<Pair> pairs;
  std::vector<runtime::ChaseSpec> specs;
  for (std::size_t i = 0; i < options.entries.size(); ++i) {
    for (std::size_t j = i + 1; j < options.entries.size(); ++j) {
      // Track through the smaller cache: the larger one's warm-up can always
      // evict it, while the reverse may not reach far enough.
      const auto& tracked = options.entries[i].cache_bytes <=
                                    options.entries[j].cache_bytes
                                ? options.entries[i]
                                : options.entries[j];
      const auto& other = &tracked == &options.entries[i]
                              ? options.entries[j]
                              : options.entries[i];

      runtime::PChaseConfig config_a;
      const Target target_a = target_for(vendor, tracked.element);
      config_a.space = target_a.space;
      config_a.flags = target_a.flags;
      config_a.array_bytes = array_bytes_for(tracked);
      config_a.stride_bytes = tracked.stride;
      config_a.record_count = 512;
      config_a.where = options.where;

      runtime::PChaseConfig config_b;
      const Target target_b = target_for(vendor, other.element);
      config_b.space = target_b.space;
      config_b.flags = target_b.flags;
      config_b.array_bytes = array_bytes_for(other);
      config_b.stride_bytes = other.stride;
      config_b.record_count = 512;
      config_b.where = options.where;

      config_a.base = gpu.alloc(config_a.array_bytes, 256);
      config_b.base = gpu.alloc(config_b.array_bytes, 256);
      pairs.push_back({options.entries[i].element, options.entries[j].element,
                       tracked.element});
      specs.push_back(runtime::ChaseSpec::sharing(config_a, config_b));
    }
  }
  runtime::ChaseBatchOptions batch;
  batch.threads = options.threads;
  batch.executor = options.executor;
  batch.pool = options.chase_pool;
  const auto results = runtime::run_chase_batch(gpu, specs, batch);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    out.cycles += results[k].total_cycles;
    const bool evicted = hit_fraction(results[k], pairs[k].tracked) < 0.5;
    out.pairs.emplace_back(pairs[k].element_a, pairs[k].element_b, evicted);
  }
  return out;
}

CuSharingBenchResult run_cu_sharing_benchmark(
    sim::Gpu& gpu, const CuSharingBenchOptions& options) {
  if (options.sl1d_bytes == 0) {
    throw std::invalid_argument("cu sharing benchmark: missing sL1d size");
  }
  CuSharingBenchResult out;
  const sim::GpuSpec& spec = gpu.spec();
  const std::uint64_t array_bytes = round_down(
      options.sl1d_bytes - options.sl1d_bytes / 8, options.stride);

  const Target target = target_for(sim::Vendor::kAmd, sim::Element::kSL1D);
  for (std::uint32_t cu_a = 0; cu_a < spec.num_sms; ++cu_a) {
    const std::uint32_t phys_a = spec.physical_cu(cu_a);
    out.peers[phys_a].push_back(phys_a);
  }
  // All CU pairs are independent dual-CU chases: one batch. Both arrays are
  // allocated once and reused by every pair — batched chases run on reset
  // replicas, so sharing the bases cannot couple them (and per-pair
  // allocations would make addresses depend on the pair order).
  runtime::PChaseConfig config;
  config.space = target.space;
  config.flags = target.flags;
  config.array_bytes = array_bytes;
  config.stride_bytes = options.stride;
  config.record_count = 256;
  config.base = gpu.alloc(array_bytes, 256);
  const std::uint64_t base_b = gpu.alloc(array_bytes, 256);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> cu_pairs;
  std::vector<runtime::ChaseSpec> specs;
  for (std::uint32_t cu_a = 0; cu_a < spec.num_sms; ++cu_a) {
    for (std::uint32_t cu_b = cu_a + 1; cu_b < spec.num_sms; ++cu_b) {
      config.where = sim::Placement{cu_a, 0};
      cu_pairs.emplace_back(cu_a, cu_b);
      specs.push_back(runtime::ChaseSpec::dual_cu(config, cu_b, base_b));
    }
  }
  runtime::ChaseBatchOptions batch;
  batch.threads = options.threads;
  batch.executor = options.executor;
  batch.pool = options.chase_pool;
  const auto results = runtime::run_chase_batch(gpu, specs, batch);
  for (std::size_t k = 0; k < cu_pairs.size(); ++k) {
    out.cycles += results[k].total_cycles;
    if (hit_fraction(results[k], sim::Element::kSL1D) < 0.5) {
      const std::uint32_t phys_a = spec.physical_cu(cu_pairs[k].first);
      const std::uint32_t phys_b = spec.physical_cu(cu_pairs[k].second);
      out.peers[phys_a].push_back(phys_b);
      out.peers[phys_b].push_back(phys_a);
    }
  }
  for (auto& [cu, peers] : out.peers) std::sort(peers.begin(), peers.end());
  return out;
}

}  // namespace mt4g::core
