// Bandwidth benchmark (paper Sec. IV-I).
//
// Stream-pattern kernel with 128-bit vector loads (ld.global.v4.u32 /
// flat_load_dwordx4), launched with the heuristic configuration the paper
// found to maximise throughput: num_SMs * max_blocks_per_SM blocks at the
// maximum threads per block. Only higher-level caches (L2, L3) and device
// memory are measured (Table I footnote).
#pragma once

#include <cstdint>

#include "sim/gpu.hpp"

namespace mt4g::core {

struct BandwidthBenchOptions {
  sim::Element target = sim::Element::kDeviceMem;  ///< kL2, kL3 or kDeviceMem
  std::uint64_t bytes = 0;  ///< data volume; 0 = 4x the element capacity
};

struct BandwidthBenchResult {
  double read_bytes_per_s = 0.0;
  double write_bytes_per_s = 0.0;
  std::uint32_t blocks = 0;            ///< launch configuration used
  std::uint32_t threads_per_block = 0;
  double seconds = 0.0;                ///< simulated kernel wall time (r+w)
};

BandwidthBenchResult run_bandwidth_benchmark(
    sim::Gpu& gpu, const BandwidthBenchOptions& options);

}  // namespace mt4g::core
