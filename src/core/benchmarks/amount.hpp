// Amount benchmark (paper Sec. IV-F, Fig. 3) and the L2 segment-size variant
// (Sec. IV-F1).
//
// Two synchronized cores in one SM/CU chase two distinct arrays sized close
// to the cache capacity: core A warms its array, core B warms a second array
// (landing in core B's cache segment), then core A re-runs timed. If both
// cores share one physical segment, B's warm-up evicted A's array and A
// misses; if B used a different segment, A still hits. B's core index starts
// at 1 and doubles until it exceeds the cores per SM; the first index that
// leaves A's data intact marks the segment boundary and
// amount = cores_per_sm / core_b.
#pragma once

#include <cstdint>
#include <vector>

#include "core/target.hpp"
#include "sim/gpu.hpp"

namespace mt4g::exec {
class Executor;
}

namespace mt4g::runtime {
struct ReplicaPool;
}

namespace mt4g::core {

struct AmountBenchOptions {
  Target target;
  std::uint64_t cache_bytes = 0;  ///< from the size benchmark
  std::uint32_t stride = 32;      ///< fetch granularity
  /// Latencies stored per p-chase run; collectors pass their global record
  /// budget through so the chase cost is tunable like the other benchmarks.
  std::uint32_t record_count = 512;
  /// Parallelism of the probe chases (caller included); 1 = serial
  /// reference. Both produce byte-identical results.
  std::uint32_t threads = 1;
  /// Executor for threads > 1; nullptr = exec::shared_executor().
  exec::Executor* executor = nullptr;
  /// Shared replica + chase-memo cache (see SizeBenchOptions::chase_pool).
  runtime::ReplicaPool* chase_pool = nullptr;
  sim::Placement where{};         ///< core A (index 0 of the SM)
};

struct AmountBenchResult {
  bool available = true;
  std::uint32_t amount = 1;
  /// (core B index, did core A still hit) per probe, for diagnostics/Fig. 3.
  std::vector<std::pair<std::uint32_t, bool>> probes;
  std::uint64_t cycles = 0;
};

AmountBenchResult run_amount_benchmark(sim::Gpu& gpu,
                                       const AmountBenchOptions& options);

/// L2 segment result: segment size benchmark + alignment to the nearest
/// integer fraction of the API-reported total (paper IV-F1).
struct L2SegmentResult {
  bool found = false;
  std::uint32_t segments = 1;
  std::uint64_t segment_bytes = 0;      ///< aligned: api_total / segments
  std::uint64_t measured_bytes = 0;     ///< raw benchmarked segment size
  double confidence = 0.0;  ///< closeness of measured to the aligned fraction
  std::uint64_t cycles = 0;
  std::uint32_t widenings = 0;       ///< from the inner size benchmark
  std::uint64_t sweep_cycles = 0;    ///< cycles in the inner sweep chases
};

/// @param sweep_threads parallelism of the inner size benchmark's sweep
///        (see SizeBenchOptions::sweep_threads); 1 = serial reference.
/// @param chase_pool shared replica + chase-memo cache for the inner size
///        benchmark; nullptr = benchmark-local.
L2SegmentResult run_l2_segment_benchmark(sim::Gpu& gpu,
                                         std::uint64_t api_total_bytes,
                                         std::uint32_t fetch_granularity,
                                         sim::Placement where = {},
                                         std::uint32_t sweep_threads = 1,
                                         runtime::ReplicaPool* chase_pool =
                                             nullptr);

}  // namespace mt4g::core
