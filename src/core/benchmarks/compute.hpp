// Compute-capability benchmark (the paper's Sec. VII extension, implemented):
// per-datatype FMA-stream kernels, swept over launch configurations to find
// the achieved peak — the FLOPS analogue of the bandwidth benchmark IV-I.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/compute.hpp"
#include "sim/gpu.hpp"

namespace mt4g::core {

struct ComputeBenchResult {
  sim::DType dtype = sim::DType::kFp32;
  bool available = false;        ///< false when the GPU lacks the path
  double achieved_ops_per_s = 0.0;
  std::uint32_t best_blocks = 0; ///< launch configuration of the maximum
  std::uint32_t threads_per_block = 0;
};

/// Measures one datatype: block-count sweep around the heuristic optimum
/// (num_SMs * max_blocks_per_SM), maximum achieved rate reported.
ComputeBenchResult run_compute_benchmark(sim::Gpu& gpu, sim::DType dtype);

/// Measures every datatype the GPU supports.
std::vector<ComputeBenchResult> run_compute_suite(sim::Gpu& gpu);

}  // namespace mt4g::core
