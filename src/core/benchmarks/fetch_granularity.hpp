// Fetch-granularity benchmark (paper Sec. IV-D).
//
// Cold p-chase runs with strides growing from 4 B in 4 B steps. While the
// stride is below the fetch granularity, several consecutive loads land in an
// already-fetched sector, so the latency sample mixes hits and misses. Once
// the stride reaches the granularity every load opens a new sector and the
// sample turns unimodal (all misses) — that stride is the fetch granularity.
//
// The per-stride chases are independent cold measurements, so they run as
// one batch through the chase-plan engine (runtime::run_chase_batch): each
// on a reset Gpu replica with a (seed, spec) noise stream, byte-identical
// for every thread count and independent of whatever ran on the Gpu before.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/target.hpp"
#include "sim/gpu.hpp"

namespace mt4g::exec {
class Executor;
}

namespace mt4g::runtime {
struct ReplicaPool;
}

namespace mt4g::core {

struct FgBenchOptions {
  Target target;
  std::uint32_t max_stride = 256;     ///< give-up bound
  std::uint64_t min_array_bytes = 1024;
  std::uint32_t min_loads = 64;       ///< array grows to keep samples usable
  /// Latencies stored per stride run (p-chase truncation semantics: runs
  /// shorter than the budget record every load).
  std::uint32_t record_count = 512;
  /// Parallelism of the stride chases (caller included); 1 = serial
  /// reference. Both produce byte-identical results.
  std::uint32_t threads = 1;
  /// Executor for threads > 1; nullptr = exec::shared_executor().
  exec::Executor* executor = nullptr;
  /// Shared replica + chase-memo cache (see SizeBenchOptions::chase_pool).
  runtime::ReplicaPool* chase_pool = nullptr;
  sim::Placement where{};
};

struct FgBenchResult {
  bool found = false;
  std::uint32_t granularity = 0;
  /// stride -> was the latency sample mixed (hits and misses)?
  std::vector<std::pair<std::uint32_t, bool>> mixed_by_stride;
  std::uint64_t cycles = 0;
};

FgBenchResult run_fg_benchmark(sim::Gpu& gpu, const FgBenchOptions& options);

/// Classifies one latency sample: true when both hits and misses are present
/// (more than noise-level counts above `floor + gap`).
bool sample_is_mixed(std::span<const std::uint32_t> latencies, double floor,
                     double gap = 40.0);

}  // namespace mt4g::core
