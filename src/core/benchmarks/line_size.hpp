// Cache-line-size benchmark (paper Sec. IV-E).
//
// Premise: the size benchmark's miss cliff assumes the p-chase step stays
// below the line size. Stepping past the line size skips whole lines, so the
// cache "appears larger" and the miss cliff moves right. We sweep array sizes
// just above the known cache size for p-chase strides above the fetch
// granularity (the line is at least one sector, so sub-granularity strides
// carry no line-size signal — and on a stacked hierarchy like Const L1 ->
// Const L1.5 they pick up hits from the level above the benchmarked cache,
// which would corrupt the shared hit-level floor — so they are not measured
// at all):
//   * strides <= line keep the full miss score (pivot-like);
//   * strides at non-power-of-two line multiples shift the cliff beyond the
//     sweep window and the score collapses (MAX-like);
//   * strides at power-of-two line multiples alias into a subset of the
//     cache sets, so their apparent capacity snaps back — the "aliased
//     outliers" the paper's heuristics must survive.
// The detector therefore scores every stride, normalises between the pivot
// and the best-behaved large stride, takes the first stride whose score
// drops below the midpoint (~1.5x the line size), and snaps down to the
// nearest power of two — the paper's final assumption.
//
// Execution model: the (stride, array size) grid points are independent
// measurements, so they run as one batch through the chase-plan engine
// (runtime::run_chase_batch) — each on a reset Gpu replica with a
// (seed, spec) noise stream, byte-identical for every thread count. The
// scores consume only the recorded latency prefix, so every chase caps its
// timed pass at the record budget.
#pragma once

#include <cstdint>
#include <vector>

#include "core/target.hpp"
#include "sim/gpu.hpp"

namespace mt4g::exec {
class Executor;
}

namespace mt4g::runtime {
struct ReplicaPool;
}

namespace mt4g::core {

struct LineSizeBenchOptions {
  Target target;
  std::uint64_t cache_bytes = 0;       ///< from the size benchmark
  std::uint32_t fetch_granularity = 32;
  std::uint32_t record_count = 512;
  std::uint32_t size_points = 9;       ///< array sizes in [1.1, 1.9] * cache
  /// Parallelism of the grid chases (caller included); 1 = serial reference.
  /// Both produce byte-identical results.
  std::uint32_t threads = 1;
  /// Executor for threads > 1; nullptr = exec::shared_executor().
  exec::Executor* executor = nullptr;
  /// Shared replica + chase-memo cache (see SizeBenchOptions::chase_pool).
  runtime::ReplicaPool* chase_pool = nullptr;
  sim::Placement where{};
  /// Probe only two adjacent mid-window array sizes per stride (1.4x/1.5x
  /// the size-sweep boundary in cache_bytes) instead of the full size grid.
  /// Per stride the two points must vote the same side of the miss-majority
  /// line; any split vote — or a contrast too low to score — falls back to
  /// the exhaustive grid (the probed points are re-used through the chase
  /// memo). The grid sizes are identical in both modes, so adaptive and
  /// fallback runs stay memo-compatible.
  bool adaptive = true;
};

struct LineSizeBenchResult {
  bool found = false;
  std::uint32_t line_bytes = 0;
  double confidence = 0.0;
  /// stride -> normalised miss score in [0,1] (1 = pivot-like, 0 = MAX-like)
  std::vector<std::pair<std::uint32_t, double>> scores;
  std::uint64_t cycles = 0;
  /// The two-point probe produced the final result.
  bool adaptive = false;
  /// The probe ran but disagreed (or lacked contrast): full grid used.
  bool adaptive_fallback = false;
};

LineSizeBenchResult run_line_size_benchmark(
    sim::Gpu& gpu, const LineSizeBenchOptions& options);

}  // namespace mt4g::core
