#include "core/benchmarks/line_size.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/units.hpp"

namespace mt4g::core {

LineSizeBenchResult run_line_size_benchmark(
    sim::Gpu& gpu, const LineSizeBenchOptions& options) {
  if (options.cache_bytes == 0 || options.fetch_granularity == 0) {
    throw std::invalid_argument("line size benchmark: missing inputs");
  }
  LineSizeBenchResult out;
  const std::uint32_t fg = options.fetch_granularity;
  const std::uint32_t stride_step = std::max<std::uint32_t>(4, fg / 2);
  const std::uint32_t max_stride = 8 * fg;

  // Array sizes spanning (cache, 2*cache): where the per-stride apparent
  // capacity C * stride/line determines whether misses appear.
  std::vector<std::uint64_t> array_sizes;
  for (std::uint32_t k = 0; k < options.size_points; ++k) {
    const double factor =
        1.1 + 0.8 * static_cast<double>(k) /
                  static_cast<double>(options.size_points - 1);
    array_sizes.push_back(round_up(
        static_cast<std::uint64_t>(factor *
                                   static_cast<double>(options.cache_bytes)),
        fg));
  }

  // Collect all runs first; the hit-level floor is global across runs.
  struct Run {
    std::uint32_t stride;
    std::vector<std::vector<std::uint32_t>> samples;  // one per array size
  };
  // Only candidate strides (strictly above the fetch granularity) are
  // measured at all: sub-granularity strides carry no line-size signal (see
  // below) and are excluded from the floor, the pivot and the collapse scan
  // anyway — yet they are the most expensive chases of the benchmark, their
  // load count scaling with 1/stride over arrays larger than the cache.
  // Skipping them cuts roughly 40% of the benchmark's simulated work on a
  // many-MiB L2 segment.
  //
  // The hit-level floor is taken from candidate strides (> fg) only: on a
  // stacked hierarchy like Const L1 -> Const L1.5, sub-granularity strides
  // pick up hits from the level *above* the benchmarked cache, which would
  // push the floor below the target's own hit latency and misclassify every
  // target hit as a miss.
  std::vector<Run> runs;
  double floor = std::numeric_limits<double>::infinity();
  const std::uint32_t first_stride =
      round_up(fg + 1, stride_step);  // smallest multiple of step above fg
  for (std::uint32_t stride = first_stride; stride <= max_stride;
       stride += stride_step) {
    Run run{stride, {}};
    for (const std::uint64_t array_bytes : array_sizes) {
      runtime::PChaseConfig config;
      config.space = options.target.space;
      config.flags = options.target.flags;
      config.stride_bytes = stride;
      config.array_bytes = round_up(array_bytes, stride);
      config.base = gpu.alloc(config.array_bytes, 256);
      config.record_count = options.record_count;
      config.warmup = true;
      config.where = options.where;
      const auto result = runtime::run_pchase(gpu, config);
      out.cycles += result.total_cycles;
      if (stride > fg) {
        for (std::uint32_t v : result.latencies) {
          floor = std::min(floor, static_cast<double>(v));
        }
      }
      run.samples.push_back(result.latencies);
    }
    runs.push_back(std::move(run));
  }

  // Raw miss score per stride: mean miss fraction across the size sweep.
  std::vector<double> raw;
  raw.reserve(runs.size());
  for (const Run& run : runs) {
    double total = 0.0;
    for (const auto& sample : run.samples) {
      std::size_t high = 0;
      for (std::uint32_t v : sample) {
        if (static_cast<double>(v) > floor + 40.0) ++high;
      }
      total += sample.empty() ? 0.0
                              : static_cast<double>(high) /
                                    static_cast<double>(sample.size());
    }
    raw.push_back(total / static_cast<double>(run.samples.size()));
  }

  // Only strides strictly above the fetch granularity can carry the signal:
  // the line size is at least one sector, so the collapse happens at
  // ~1.5x line >= 1.5x granularity. Sub-granularity strides mix in extra
  // same-sector hits and would fake a collapse.
  // Normalise candidate scores between the pivot (the strongest miss score
  // among candidates) and the best-behaved large stride (the minimum, which
  // dodges the power-of-two aliasing that keeps strides at 2x/4x the line
  // size pivot-like).
  double pivot = 0.0;
  double best = 1.0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (runs[i].stride <= fg) continue;
    pivot = std::max(pivot, raw[i]);
    best = std::min(best, raw[i]);
  }
  if (pivot - best < 0.2) {
    return out;  // no contrast: inconclusive (e.g. wrong cache size input)
  }
  std::vector<double> norm;
  norm.reserve(raw.size());
  for (double r : raw) {
    norm.push_back(std::clamp((r - best) / (pivot - best), 0.0, 1.0));
  }
  for (std::size_t i = 0; i < runs.size(); ++i) {
    out.scores.emplace_back(runs[i].stride, norm[i]);
  }

  // The first candidate stride whose score collapses sits between ~1.3x and
  // 2x the line size; snapping down to a power of two recovers the line size.
  for (std::size_t i = 0; i < norm.size(); ++i) {
    if (runs[i].stride <= fg) continue;
    if (norm[i] < 0.6) {
      out.found = true;
      out.line_bytes =
          static_cast<std::uint32_t>(floor_pow2(runs[i].stride));
      out.confidence =
          std::clamp((i > 0 ? norm[i - 1] : 1.0) - norm[i], 0.0, 1.0);
      break;
    }
  }
  return out;
}

}  // namespace mt4g::core
