#include "core/benchmarks/line_size.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/units.hpp"
#include "runtime/batch.hpp"

namespace mt4g::core {

LineSizeBenchResult run_line_size_benchmark(
    sim::Gpu& gpu, const LineSizeBenchOptions& options) {
  if (options.cache_bytes == 0 || options.fetch_granularity == 0) {
    throw std::invalid_argument("line size benchmark: missing inputs");
  }
  if (options.size_points < 2) {
    // The size factors interpolate between 1.1 and 1.9, and the arena is
    // sized from the largest array: both need at least two points.
    throw std::invalid_argument("line size benchmark: size_points < 2");
  }
  LineSizeBenchResult out;
  const std::uint32_t fg = options.fetch_granularity;
  const std::uint32_t stride_step = std::max<std::uint32_t>(4, fg / 2);
  const std::uint32_t max_stride = 8 * fg;

  // Array sizes spanning (cache, 2*cache): where the per-stride apparent
  // capacity C * stride/line determines whether misses appear.
  std::vector<std::uint64_t> array_sizes;
  for (std::uint32_t k = 0; k < options.size_points; ++k) {
    const double factor =
        1.1 + 0.8 * static_cast<double>(k) /
                  static_cast<double>(options.size_points - 1);
    array_sizes.push_back(round_up(
        static_cast<std::uint64_t>(factor *
                                   static_cast<double>(options.cache_bytes)),
        fg));
  }

  // Candidate strides: the smallest stride-step multiples strictly above the
  // fetch granularity, up to 8x the granularity.
  std::vector<std::uint32_t> strides;
  const std::uint32_t first_stride = round_up(fg + 1, stride_step);
  for (std::uint32_t stride = first_stride; stride <= max_stride;
       stride += stride_step) {
    strides.push_back(stride);
  }

  // One arena reused by every grid point: batched chases run on reset
  // replicas, so sharing a base cannot couple them, and a single allocation
  // keeps the owning Gpu's heap layout independent of the grid shape (and of
  // whether the adaptive probe fell back to the full grid).
  const std::uint64_t arena =
      gpu.alloc(array_sizes.back() + max_stride, 256);

  // A fallback run re-measures the probed grid points; routing both batches
  // through one pool answers them from the memo instead.
  runtime::ReplicaPool local_pool;
  runtime::ReplicaPool* pool =
      options.chase_pool ? options.chase_pool : &local_pool;

  // (stride, array size) grid points are independent measurements: one
  // batch per probe. The scores read only the recorded latency prefix, so
  // every chase caps its timed pass at the record budget.
  const auto measure = [&](const std::vector<std::size_t>& size_idx) {
    std::vector<runtime::ChaseSpec> specs;
    specs.reserve(strides.size() * size_idx.size());
    for (const std::uint32_t stride : strides) {
      for (const std::size_t k : size_idx) {
        runtime::PChaseConfig config;
        config.space = options.target.space;
        config.flags = options.target.flags;
        config.stride_bytes = stride;
        config.array_bytes = round_up(array_sizes[k], stride);
        config.base = arena;
        config.record_count = options.record_count;
        config.max_timed_steps = options.record_count;
        config.warmup = true;
        config.where = options.where;
        specs.push_back(runtime::ChaseSpec::plain(config));
      }
    }
    runtime::ChaseBatchOptions batch;
    batch.threads = options.threads;
    batch.executor = options.executor;
    batch.pool = pool;
    auto measured = runtime::run_chase_batch(gpu, specs, batch);
    for (const auto& result : measured) out.cycles += result.total_cycles;
    return measured;
  };

  // Per-stride, per-size miss fractions against the global hit-level floor:
  // every stride is a candidate (> fg), so every recorded latency
  // contributes to the floor.
  const auto miss_fractions = [&](const auto& measured, std::size_t points) {
    double floor = std::numeric_limits<double>::infinity();
    for (const auto& result : measured) {
      for (std::uint32_t v : result.latencies) {
        floor = std::min(floor, static_cast<double>(v));
      }
    }
    std::vector<std::vector<double>> fractions(strides.size());
    for (std::size_t s = 0; s < strides.size(); ++s) {
      for (std::size_t p = 0; p < points; ++p) {
        const auto& sample = measured[s * points + p].latencies;
        std::size_t high = 0;
        for (std::uint32_t v : sample) {
          if (static_cast<double>(v) > floor + 40.0) ++high;
        }
        fractions[s].push_back(sample.empty()
                                   ? 0.0
                                   : static_cast<double>(high) /
                                         static_cast<double>(sample.size()));
      }
    }
    return fractions;
  };

  // Scores the grid and detects the cliff; returns false when the contrast
  // between the pivot and the best-behaved stride is too low to decide.
  const auto score = [&](const std::vector<std::vector<double>>& fractions) {
    // Raw miss score per stride: mean miss fraction across measured sizes.
    std::vector<double> raw;
    raw.reserve(strides.size());
    for (const std::vector<double>& f : fractions) {
      double total = 0.0;
      for (const double v : f) total += v;
      raw.push_back(total / static_cast<double>(f.size()));
    }

    // Normalise the scores between the pivot (the strongest miss score) and
    // the best-behaved large stride (the minimum, which dodges the
    // power-of-two aliasing that keeps strides at 2x/4x the line size
    // pivot-like).
    double pivot = 0.0;
    double best = 1.0;
    for (const double r : raw) {
      pivot = std::max(pivot, r);
      best = std::min(best, r);
    }
    out.scores.clear();
    if (pivot - best < 0.2) {
      return false;  // no contrast: inconclusive (e.g. wrong cache size)
    }
    std::vector<double> norm;
    norm.reserve(raw.size());
    for (double r : raw) {
      norm.push_back(std::clamp((r - best) / (pivot - best), 0.0, 1.0));
    }
    for (std::size_t i = 0; i < strides.size(); ++i) {
      out.scores.emplace_back(strides[i], norm[i]);
    }

    // The first stride whose score collapses sits between ~1.3x and 2x the
    // line size; snapping down to a power of two recovers the line size.
    // The confidence is the drop from the preceding (measured) stride's
    // score — for the very first stride there is no predecessor and the
    // pivot score 1.0 stands in.
    for (std::size_t i = 0; i < norm.size(); ++i) {
      if (norm[i] < 0.6) {
        out.found = true;
        out.line_bytes = static_cast<std::uint32_t>(floor_pow2(strides[i]));
        out.confidence =
            std::clamp((i > 0 ? norm[i - 1] : 1.0) - norm[i], 0.0, 1.0);
        break;
      }
    }
    return true;
  };

  // Adaptive two-point probe: two adjacent mid-window sizes (1.4x and 1.5x
  // the boundary the size sweep found). A stride's verdict flips between
  // two probe sizes only when its apparent capacity (stride/line * cache)
  // lands strictly between them — and with strides on a fg/2 grid and
  // power-of-two lines the possible capacity ratios are multiples of 1/8
  // (or coarser), none of which falls strictly inside (1.4, 1.5). So per
  // stride both points vote the same side of the miss-majority line: pivot
  // strides (at or below the line, and power-of-two aliases) miss at both,
  // collapsed strides fit at both, and the first collapsing stride lies in
  // [1.5, 2) lines — snapping down to the same power of two as the full
  // grid's cliff. Any residual split vote (associativity effects straddling
  // the majority line) means two points cannot score the stride: fall back
  // to the exhaustive grid.
  if (options.adaptive && options.size_points >= 5) {
    const std::vector<std::size_t> probe_idx = {3, 4};
    const auto measured = measure(probe_idx);
    const auto fractions = miss_fractions(measured, probe_idx.size());
    bool agree = true;
    for (const std::vector<double>& f : fractions) {
      if ((f[0] > 0.5) != (f[1] > 0.5)) {
        agree = false;
        break;
      }
    }
    if (agree && score(fractions)) {
      out.adaptive = true;
      return out;
    }
    out.adaptive_fallback = true;
  }

  std::vector<std::size_t> all_idx(array_sizes.size());
  for (std::size_t k = 0; k < all_idx.size(); ++k) all_idx[k] = k;
  const auto measured = measure(all_idx);
  score(miss_fractions(measured, all_idx.size()));
  return out;
}

}  // namespace mt4g::core
