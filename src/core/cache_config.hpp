// L1/Shared split policy (cudaDeviceSetCacheConfig analogue).
//
// On NVIDIA GPUs the L1 data cache and Shared Memory share one physical
// array whose split is a runtime choice (paper Sec. V footnote 17: the MT4G
// CLI can measure under PreferShared/PreferL1/PreferEqual; the paper's
// Table III used PreferL1). The substrate models the policy by rewriting the
// spec's L1 (and its physical-group peers) and Shared Memory sizes before
// the simulated GPU is instantiated.
#pragma once

#include <string>

#include "sim/spec.hpp"

namespace mt4g::core {

/// Returns a copy of @p spec with the L1/Shared split applied.
/// @param config "PreferL1" (identity), "PreferShared" or "PreferEqual".
/// Throws std::invalid_argument for unknown policies.
sim::GpuSpec apply_cache_config(const sim::GpuSpec& spec,
                                const std::string& config);

}  // namespace mt4g::core
