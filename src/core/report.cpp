#include "core/report.hpp"

namespace mt4g::core {

std::string provenance_symbol(Provenance provenance) {
  switch (provenance) {
    case Provenance::kBenchmark: return "!";
    case Provenance::kApi: return "!(API)";
    case Provenance::kUnavailable: return "#";
    case Provenance::kNotApplicable: return "n/a";
  }
  return "?";
}

const MemoryElementReport* TopologyReport::find(sim::Element element) const {
  for (const auto& row : memory) {
    if (row.element == element) return &row;
  }
  return nullptr;
}

MemoryElementReport* TopologyReport::find(sim::Element element) {
  for (auto& row : memory) {
    if (row.element == element) return &row;
  }
  return nullptr;
}

}  // namespace mt4g::core
