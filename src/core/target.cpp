#include "core/target.hpp"

#include <stdexcept>

namespace mt4g::core {

Target target_for(sim::Vendor vendor, sim::Element element) {
  Target t;
  t.element = element;
  if (vendor == sim::Vendor::kNvidia) {
    switch (element) {
      case sim::Element::kL1:  // ld.global.ca.u32
        t.space = sim::Space::kGlobal;
        return t;
      case sim::Element::kL2:  // ld.global.cg.u32 (bypasses L1)
        t.space = sim::Space::kGlobal;
        t.flags.bypass_l1 = true;
        return t;
      case sim::Element::kTexture:  // tex1Dfetch<uint32_t>
        t.space = sim::Space::kTexture;
        return t;
      case sim::Element::kReadOnly:  // __ldg(const uint32_t*)
        t.space = sim::Space::kReadOnly;
        return t;
      case sim::Element::kConstL1:   // ld.const.u32
      case sim::Element::kConstL15:  // ld.const.u32 with CL1 evicted
        t.space = sim::Space::kConstant;
        return t;
      case sim::Element::kSharedMem:  // __shared__
        t.space = sim::Space::kShared;
        return t;
      case sim::Element::kDeviceMem:  // ld.global.cg on uncached data
        t.space = sim::Space::kGlobal;
        t.flags.bypass_l1 = true;
        return t;
      default:
        break;
    }
  } else {
    switch (element) {
      case sim::Element::kVL1:  // flat_load_dword
        t.space = sim::Space::kGlobal;
        return t;
      case sim::Element::kSL1D:  // s_load_dword
        t.space = sim::Space::kScalar;
        return t;
      case sim::Element::kL2:  // flat_load_dword with GLC/sc0=1
      case sim::Element::kL3:
        t.space = sim::Space::kGlobal;
        t.flags.bypass_l1 = true;
        return t;
      case sim::Element::kLds:  // __shared__
        t.space = sim::Space::kShared;
        return t;
      case sim::Element::kDeviceMem:
        t.space = sim::Space::kGlobal;
        t.flags.bypass_l1 = true;
        return t;
      default:
        break;
    }
  }
  throw std::invalid_argument("no load path targets element " +
                              sim::element_name(element) + " on " +
                              sim::vendor_name(vendor));
}

int depth_rank(sim::Element element) {
  switch (element) {
    case sim::Element::kL1:
    case sim::Element::kTexture:
    case sim::Element::kReadOnly:
    case sim::Element::kConstL1:
    case sim::Element::kVL1:
    case sim::Element::kSL1D:
    case sim::Element::kSharedMem:
    case sim::Element::kLds:
      return 0;
    case sim::Element::kConstL15:
      return 1;
    case sim::Element::kL2:
      return 2;
    case sim::Element::kL3:
      return 3;
    case sim::Element::kDeviceMem:
      return 4;
  }
  return 4;
}

bool served_within(sim::Element tracked, sim::Element served) {
  return depth_rank(served) <= depth_rank(tracked);
}

double hit_fraction(const runtime::PChaseResult& result,
                    sim::Element tracked) {
  if (result.timed_loads == 0) return 0.0;
  std::uint64_t within = 0;
  for (std::size_t i = 0; i < sim::kElementCount; ++i) {
    const auto element = static_cast<sim::Element>(i);
    if (served_within(tracked, element)) within += result.served_by.at(element);
  }
  return static_cast<double>(within) /
         static_cast<double>(result.timed_loads);
}

}  // namespace mt4g::core
