// Shared state between the vendor-specific collectors. Internal header.
#pragma once

#include <cstdint>

#include "core/collector.hpp"
#include "core/report.hpp"
#include "runtime/batch.hpp"
#include "sim/gpu.hpp"

namespace mt4g::core::detail {

/// Accumulates the report, the benchmark count, and the simulated GPU time
/// while a vendor collector walks its element list.
struct CollectorContext {
  sim::Gpu& gpu;
  const DiscoverOptions& options;
  TopologyReport report;
  /// Discovery-wide chase replicas + memo: every batched benchmark of this
  /// discovery shares the replicas (no per-benchmark re-fork) and the chase
  /// memo (a spec measured anywhere in the discovery costs zero cycles when
  /// it recurs).
  runtime::ReplicaPool chase_pool;

  /// Books one executed microbenchmark and its simulated cycles.
  void book(std::uint64_t cycles) {
    ++report.benchmarks_executed;
    report.total_cycles += cycles;
    report.simulated_seconds +=
        static_cast<double>(cycles) / (gpu.spec().clock_mhz * 1e6);
  }

  /// Books the sweep-engine telemetry of one size benchmark.
  void book_sweep(std::uint32_t widenings, std::uint64_t sweep_cycles) {
    report.sweep_widenings += widenings;
    report.sweep_cycles += sweep_cycles;
  }

  /// Per-benchmark cycle attribution (called alongside book()).
  void book_line_size(std::uint64_t cycles) {
    report.line_size_cycles += cycles;
  }
  void book_amount(std::uint64_t cycles) { report.amount_cycles += cycles; }
  void book_sharing(std::uint64_t cycles) { report.sharing_cycles += cycles; }

  /// Books seconds directly (bandwidth kernels report wall time).
  void book_seconds(double seconds) {
    ++report.benchmarks_executed;
    report.simulated_seconds += seconds;
  }

  bool wants(sim::Element element) const {
    return !options.only || *options.only == element;
  }
};

void collect_nvidia(CollectorContext& ctx);
void collect_amd(CollectorContext& ctx);

}  // namespace mt4g::core::detail
