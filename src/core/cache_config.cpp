#include "core/cache_config.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/units.hpp"

namespace mt4g::core {

sim::GpuSpec apply_cache_config(const sim::GpuSpec& spec,
                                const std::string& config) {
  if (config == "PreferL1") return spec;
  if (config != "PreferShared" && config != "PreferEqual") {
    throw std::invalid_argument("unknown cache config '" + config + "'");
  }
  sim::GpuSpec out = spec;
  if (spec.vendor != sim::Vendor::kNvidia ||
      !spec.has(sim::Element::kL1) || !spec.has(sim::Element::kSharedMem)) {
    return out;  // the policy only exists on NVIDIA L1/Shared arrays
  }
  const std::uint64_t combined = spec.at(sim::Element::kL1).size_bytes +
                                 spec.at(sim::Element::kSharedMem).size_bytes;
  const std::uint32_t line = spec.at(sim::Element::kL1).line_bytes;
  std::uint64_t l1_size = 0;
  if (config == "PreferShared") {
    // Keep a small L1 slice (1/8 of the array, at least 16 lines).
    l1_size = std::max<std::uint64_t>(combined / 8,
                                      static_cast<std::uint64_t>(line) * 16);
  } else {  // PreferEqual
    l1_size = combined / 2;
  }
  l1_size = round_down(l1_size, line);
  const std::uint64_t shared_size = combined - l1_size;
  // The L1 resize must propagate to every element sharing its physical cache
  // (Texture / ReadOnly on post-Pascal parts).
  const std::uint32_t group = spec.at(sim::Element::kL1).physical_group;
  for (auto& [element, espec] : out.elements) {
    if (espec.per_sm && espec.physical_group == group &&
        espec.line_bytes != 0) {
      espec.size_bytes = l1_size;
    }
  }
  out.elements[sim::Element::kSharedMem].size_bytes = shared_size;
  return out;
}

}  // namespace mt4g::core
