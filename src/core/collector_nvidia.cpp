// NVIDIA collector: orchestrates the full microbenchmark suite over the
// NVIDIA memory elements (paper Table I, upper half).
#include <algorithm>
#include <map>

#include "common/units.hpp"
#include "core/benchmarks/amount.hpp"
#include "core/benchmarks/bandwidth.hpp"
#include "core/benchmarks/fetch_granularity.hpp"
#include "core/benchmarks/latency.hpp"
#include "core/benchmarks/line_size.hpp"
#include "core/benchmarks/sharing.hpp"
#include "core/benchmarks/size.hpp"
#include "core/collector_detail.hpp"
#include "runtime/device.hpp"

namespace mt4g::core::detail {
namespace {

using sim::Element;

/// NVIDIA's constant arrays are capped at 64 KiB (paper Sec. III-C / [38]).
constexpr std::uint64_t kConstantArrayLimit = 64 * KiB;

std::string short_name(Element element) {
  switch (element) {
    case Element::kL1: return "L1";
    case Element::kTexture: return "TEX";
    case Element::kReadOnly: return "RO";
    case Element::kConstL1: return "CO";
    default: return sim::element_name(element);
  }
}

/// State carried between benchmarks of one element.
struct ElementState {
  std::uint32_t fg = 0;
  std::uint64_t size = 0;
};

/// Runs FG + size + latency + line + amount for one first-level cache.
MemoryElementReport collect_first_level_cache(CollectorContext& ctx,
                                              Element element,
                                              ElementState& state,
                                              std::uint64_t size_lower,
                                              std::uint64_t size_upper,
                                              std::uint64_t latency_min_array) {
  sim::Gpu& gpu = ctx.gpu;
  const Target target = target_for(sim::Vendor::kNvidia, element);
  MemoryElementReport row;
  row.element = element;

  // Fetch granularity first: it is the step size of everything that follows.
  FgBenchOptions fg_options;
  fg_options.target = target;
  fg_options.record_count = ctx.options.record_count;
  const auto fg = run_fg_benchmark(gpu, fg_options);
  ctx.book(fg.cycles);
  row.fetch_granularity = fg.found
                              ? Attribute::benchmarked(fg.granularity)
                              : Attribute::unavailable("no unimodal stride");
  state.fg = fg.found ? fg.granularity : 32;

  // Size via the K-S workflow.
  SizeBenchOptions size_options;
  size_options.target = target;
  size_options.lower = size_lower;
  size_options.upper = size_upper;
  size_options.stride = state.fg;
  size_options.record_count = ctx.options.record_count;
  size_options.sweep_threads = ctx.options.sweep_threads;
  size_options.chase_pool = &ctx.chase_pool;
  const auto size = run_size_benchmark(gpu, size_options);
  ctx.book(size.cycles);
  ctx.book_sweep(size.widenings, size.sweep_cycles);
  if (size.found) {
    row.size = Attribute::benchmarked(
        static_cast<double>(size.exact_bytes), size.confidence);
    state.size = size.exact_bytes;
  } else if (size.upper_bound_hit) {
    row.size = Attribute::unavailable(">" + format_bytes(size_upper));
  } else {
    row.size = Attribute::unavailable("no change point");
  }
  if (ctx.options.collect_series && !size.sweep_sizes.empty()) {
    ctx.report.series.push_back(SizeSeries{element, size.sweep_sizes,
                                           size.reduced, size.exact_bytes});
  }

  // Load latency.
  LatencyBenchOptions latency_options;
  latency_options.target = target;
  latency_options.fetch_granularity = state.fg;
  latency_options.min_array_bytes = latency_min_array;
  latency_options.cache_bytes = state.size;
  const auto latency = run_latency_benchmark(gpu, latency_options);
  ctx.book(latency.cycles);
  row.load_latency = Attribute::benchmarked(latency.summary.mean);
  row.latency_stats = latency.summary;

  // Cache line size (requires the detected size).
  if (state.size != 0) {
    LineSizeBenchOptions line_options;
    line_options.target = target;
    line_options.cache_bytes = state.size;
    line_options.fetch_granularity = state.fg;
    line_options.threads = ctx.options.sweep_threads;
    line_options.chase_pool = &ctx.chase_pool;
    const auto line = run_line_size_benchmark(gpu, line_options);
    ctx.book(line.cycles);
    ctx.book_line_size(line.cycles);
    row.cache_line = line.found
                         ? Attribute::benchmarked(line.line_bytes,
                                                  line.confidence)
                         : Attribute::unavailable("inconclusive");
  } else {
    row.cache_line = Attribute::unavailable("cache size unknown");
  }

  // Amount of independent segments per SM.
  if (element == Element::kL1 && gpu.spec().l1_amount_unavailable) {
    row.amount =
        Attribute::unavailable("unable to schedule a thread on warp 3");
  } else if (state.size != 0) {
    AmountBenchOptions amount_options;
    amount_options.target = target;
    amount_options.cache_bytes = state.size;
    amount_options.stride = state.fg;
    amount_options.record_count = ctx.options.record_count;
    amount_options.threads = ctx.options.sweep_threads;
    amount_options.chase_pool = &ctx.chase_pool;
    const auto amount = run_amount_benchmark(gpu, amount_options);
    ctx.book(amount.cycles);
    ctx.book_amount(amount.cycles);
    row.amount = amount.available
                     ? Attribute::benchmarked(amount.amount)
                     : Attribute::unavailable("cache smaller than one stride");
  } else {
    row.amount = Attribute::unavailable("cache size unknown");
  }

  // Bandwidth is only measured on higher-level caches and device memory.
  row.read_bandwidth = Attribute::not_applicable();
  row.write_bandwidth = Attribute::not_applicable();
  return row;
}

}  // namespace

void collect_nvidia(CollectorContext& ctx) {
  sim::Gpu& gpu = ctx.gpu;
  const runtime::DeviceProp prop = runtime::get_device_prop(gpu);
  std::map<Element, ElementState> states;

  // --- First-level caches: L1, Texture, ReadOnly, Constant L1. -------------
  const Element first_level[] = {Element::kL1, Element::kTexture,
                                 Element::kReadOnly, Element::kConstL1};
  for (Element element : first_level) {
    if (!gpu.spec().has(element)) continue;
    const bool is_constant = element == Element::kConstL1;
    // Constant L1 probing also pre-computes state for the CL1.5 benchmarks.
    if (!ctx.wants(element) &&
        !(is_constant && ctx.wants(Element::kConstL15))) {
      continue;
    }
    ElementState& state = states[element];
    auto row = collect_first_level_cache(
        ctx, element, state,
        /*size_lower=*/1 * KiB,
        /*size_upper=*/is_constant ? kConstantArrayLimit : 1024 * KiB,
        /*latency_min_array=*/0);
    if (ctx.wants(element)) ctx.report.memory.push_back(row);
  }

  // --- Constant L1.5 (between Constant L1 and L2). -------------------------
  if (gpu.spec().has(Element::kConstL15) && ctx.wants(Element::kConstL15)) {
    const Target target = target_for(sim::Vendor::kNvidia, Element::kConstL15);
    MemoryElementReport row;
    row.element = Element::kConstL15;
    const std::uint64_t cl1_size =
        states.count(Element::kConstL1) ? states[Element::kConstL1].size : 2 * KiB;
    const std::uint32_t cl1_fg = states.count(Element::kConstL1)
                                     ? states[Element::kConstL1].fg
                                     : 64;

    FgBenchOptions fg_options;
    fg_options.target = target;
    fg_options.record_count = ctx.options.record_count;
    // Stay beyond the Const L1 capacity so its hits do not mask the pattern.
    fg_options.min_array_bytes = 2 * cl1_size;
    const auto fg = run_fg_benchmark(gpu, fg_options);
    ctx.book(fg.cycles);
    const std::uint32_t fg_value = fg.found ? fg.granularity : cl1_fg;
    row.fetch_granularity = fg.found
                                ? Attribute::benchmarked(fg.granularity)
                                : Attribute::unavailable("no unimodal stride");

    SizeBenchOptions size_options;
    size_options.target = target;
    size_options.lower = std::max<std::uint64_t>(2 * cl1_size, 4 * KiB);
    size_options.upper = kConstantArrayLimit;  // the hard 64 KiB wall
    size_options.stride = fg_value;
    size_options.record_count = ctx.options.record_count;
    size_options.sweep_threads = ctx.options.sweep_threads;
    size_options.chase_pool = &ctx.chase_pool;
    const auto size = run_size_benchmark(gpu, size_options);
    ctx.book(size.cycles);
    ctx.book_sweep(size.widenings, size.sweep_cycles);
    std::uint64_t cl15_size = 0;
    if (size.found) {
      row.size = Attribute::benchmarked(
          static_cast<double>(size.exact_bytes), size.confidence);
      cl15_size = size.exact_bytes;
    } else {
      // The array limit truncates the search: report the bound, confidence 0
      // (paper Table III: ">64KiB").
      row.size = Attribute{Provenance::kBenchmark,
                           static_cast<double>(kConstantArrayLimit), 0.0,
                           ">" + format_bytes(kConstantArrayLimit)};
    }
    if (ctx.options.collect_series && !size.sweep_sizes.empty()) {
      ctx.report.series.push_back(SizeSeries{Element::kConstL15,
                                             size.sweep_sizes, size.reduced,
                                             size.exact_bytes});
    }

    LatencyBenchOptions latency_options;
    latency_options.target = target;
    latency_options.fetch_granularity = fg_value;
    latency_options.min_array_bytes = 4 * cl1_size;
    latency_options.cache_bytes = cl15_size;
    const auto latency = run_latency_benchmark(gpu, latency_options);
    ctx.book(latency.cycles);
    row.load_latency = Attribute::benchmarked(latency.summary.mean);
    row.latency_stats = latency.summary;

    if (cl15_size != 0) {
      LineSizeBenchOptions line_options;
      line_options.target = target;
      line_options.cache_bytes = cl15_size;
      line_options.fetch_granularity = fg_value;
      line_options.threads = ctx.options.sweep_threads;
      line_options.chase_pool = &ctx.chase_pool;
      const auto line = run_line_size_benchmark(gpu, line_options);
      ctx.book(line.cycles);
      ctx.book_line_size(line.cycles);
      row.cache_line = line.found
                           ? Attribute::benchmarked(line.line_bytes,
                                                    line.confidence)
                           : Attribute::unavailable("inconclusive");
    } else {
      // Line size takes the cache size as input (paper Sec. V): not computed.
      row.cache_line = Attribute::unavailable("cache size not determined");
    }
    // The 64 KiB constant limit also blocks the amount benchmark (Table I: #).
    row.amount = Attribute::unavailable("64 KiB constant array limitation");
    row.read_bandwidth = Attribute::not_applicable();
    row.write_bandwidth = Attribute::not_applicable();
    ctx.report.memory.push_back(row);
  }

  // --- L2 cache. ------------------------------------------------------------
  if (gpu.spec().has(Element::kL2) && ctx.wants(Element::kL2)) {
    const Target target = target_for(sim::Vendor::kNvidia, Element::kL2);
    MemoryElementReport row;
    row.element = Element::kL2;
    row.size = Attribute::from_api(static_cast<double>(prop.l2_cache_size));

    FgBenchOptions fg_options;
    fg_options.target = target;
    fg_options.record_count = ctx.options.record_count;
    const auto fg = run_fg_benchmark(gpu, fg_options);
    ctx.book(fg.cycles);
    const std::uint32_t fg_value = fg.found ? fg.granularity : 32;
    row.fetch_granularity = fg.found
                                ? Attribute::benchmarked(fg.granularity)
                                : Attribute::unavailable("no unimodal stride");

    LatencyBenchOptions latency_options;
    latency_options.target = target;
    latency_options.fetch_granularity = fg_value;
    const auto latency = run_latency_benchmark(gpu, latency_options);
    ctx.book(latency.cycles);
    row.load_latency = Attribute::benchmarked(latency.summary.mean);
    row.latency_stats = latency.summary;

    // Segment count: size benchmark + alignment to an integer fraction of
    // the API total (paper IV-F1).
    const auto segment =
        run_l2_segment_benchmark(gpu, prop.l2_cache_size, fg_value, {},
                                 ctx.options.sweep_threads, &ctx.chase_pool);
    ctx.book(segment.cycles);
    ctx.book_sweep(segment.widenings, segment.sweep_cycles);
    std::uint64_t segment_bytes = prop.l2_cache_size;
    if (segment.found) {
      row.amount = Attribute::benchmarked(segment.segments,
                                          segment.confidence);
      row.amount_per_gpu = true;
      segment_bytes = segment.segment_bytes;
    } else {
      row.amount = Attribute::unavailable("segment size not detected");
    }

    LineSizeBenchOptions line_options;
    line_options.target = target;
    line_options.cache_bytes = segment_bytes;
    line_options.fetch_granularity = fg_value;
    line_options.threads = ctx.options.sweep_threads;
    line_options.chase_pool = &ctx.chase_pool;
    const auto line = run_line_size_benchmark(gpu, line_options);
    ctx.book(line.cycles);
    ctx.book_line_size(line.cycles);
    row.cache_line = line.found
                         ? Attribute::benchmarked(line.line_bytes,
                                                  line.confidence)
                         : Attribute::unavailable("inconclusive");

    BandwidthBenchOptions bw_options;
    bw_options.target = Element::kL2;
    const auto bw = run_bandwidth_benchmark(gpu, bw_options);
    ctx.book_seconds(bw.seconds / 2);
    ctx.book_seconds(bw.seconds / 2);  // read and write are two benchmarks
    row.read_bandwidth = Attribute::benchmarked(bw.read_bytes_per_s);
    row.write_bandwidth = Attribute::benchmarked(bw.write_bytes_per_s);
    ctx.report.memory.push_back(row);
  }

  // --- Shared Memory. --------------------------------------------------------
  if (gpu.spec().has(Element::kSharedMem) && ctx.wants(Element::kSharedMem)) {
    MemoryElementReport row;
    row.element = Element::kSharedMem;
    row.size =
        Attribute::from_api(static_cast<double>(prop.shared_mem_per_block));
    const auto latency = run_scratchpad_latency(gpu);
    ctx.book(latency.cycles);
    row.load_latency = Attribute::benchmarked(latency.summary.mean);
    row.latency_stats = latency.summary;
    ctx.report.memory.push_back(row);
  }

  // --- Device memory. ---------------------------------------------------------
  if (gpu.spec().has(Element::kDeviceMem) && ctx.wants(Element::kDeviceMem)) {
    MemoryElementReport row;
    row.element = Element::kDeviceMem;
    row.size =
        Attribute::from_api(static_cast<double>(prop.total_global_mem));

    LatencyBenchOptions latency_options;
    latency_options.target =
        target_for(sim::Vendor::kNvidia, Element::kDeviceMem);
    latency_options.fetch_granularity = 32;
    latency_options.cold = true;  // every load must fall through to DRAM
    const auto latency = run_latency_benchmark(gpu, latency_options);
    ctx.book(latency.cycles);
    row.load_latency = Attribute::benchmarked(latency.summary.mean);
    row.latency_stats = latency.summary;

    BandwidthBenchOptions bw_options;
    bw_options.target = Element::kDeviceMem;
    bw_options.bytes = 1 * GiB;
    const auto bw = run_bandwidth_benchmark(gpu, bw_options);
    ctx.book_seconds(bw.seconds / 2);
    ctx.book_seconds(bw.seconds / 2);
    row.read_bandwidth = Attribute::benchmarked(bw.read_bytes_per_s);
    row.write_bandwidth = Attribute::benchmarked(bw.write_bytes_per_s);
    ctx.report.memory.push_back(row);
  }

  // --- Physical sharing across logical spaces (paper IV-G). -----------------
  if (!ctx.options.only) {
    SharingBenchOptions sharing_options;
    for (Element element : first_level) {
      const auto it = states.find(element);
      if (it == states.end() || it->second.size == 0) continue;
      sharing_options.entries.push_back(
          {element, it->second.size, it->second.fg,
           element == Element::kConstL1 ? kConstantArrayLimit : 0});
    }
    sharing_options.threads = ctx.options.sweep_threads;
    sharing_options.chase_pool = &ctx.chase_pool;
    if (sharing_options.entries.size() >= 2) {
      const auto sharing = run_sharing_benchmark(gpu, sharing_options);
      // Each tested pair is one benchmark execution.
      for (std::size_t i = 1; i < sharing.pairs.size(); ++i) ctx.book(0);
      ctx.book(sharing.cycles);
      ctx.book_sharing(sharing.cycles);
      for (auto& row : ctx.report.memory) {
        const auto group = sharing.group_of(row.element);
        if (std::find_if(sharing_options.entries.begin(),
                         sharing_options.entries.end(), [&](const auto& e) {
                           return e.element == row.element;
                         }) == sharing_options.entries.end()) {
          continue;
        }
        if (group.empty()) {
          row.shared_with = "no";
        } else {
          std::string joined = short_name(row.element);
          for (Element peer : group) joined += "," + short_name(peer);
          row.shared_with = joined;
        }
      }
    }
  }
}

}  // namespace mt4g::core::detail
