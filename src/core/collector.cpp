#include "core/collector.hpp"

#include "core/benchmarks/compute.hpp"
#include "core/collector_detail.hpp"
#include "runtime/device.hpp"

namespace mt4g::core {

TopologyReport discover(sim::Gpu& gpu, const DiscoverOptions& options) {
  detail::CollectorContext ctx{gpu, options, {}};
  const runtime::DeviceProp prop = runtime::get_device_prop(gpu);

  // --- General information (paper III-A): entirely from the device API. ----
  GeneralInfo& general = ctx.report.general;
  general.gpu_name = gpu.spec().name;
  general.vendor = prop.vendor;
  general.model = prop.name;
  general.microarchitecture = prop.microarchitecture;
  general.compute_capability = prop.compute_capability;
  general.clock_mhz = prop.clock_mhz;
  general.memory_clock_mhz = prop.memory_clock_mhz;
  general.memory_bus_bits = prop.memory_bus_bits;

  // --- Compute resources (paper III-B): API + cores-per-SM lookup table. ---
  ComputeInfo& compute = ctx.report.compute;
  compute.num_sms = prop.multi_processor_count;
  compute.cores_per_sm =
      runtime::cores_per_sm_lookup(prop.microarchitecture);
  compute.num_cores_total = compute.num_sms * compute.cores_per_sm;
  compute.warp_size = prop.warp_size;
  compute.warps_per_sm =
      prop.warp_size ? prop.max_threads_per_multiprocessor / prop.warp_size : 0;
  compute.max_threads_per_block = prop.max_threads_per_block;
  compute.max_threads_per_sm = prop.max_threads_per_multiprocessor;
  compute.max_blocks_per_sm = prop.max_blocks_per_multiprocessor;
  compute.regs_per_block = prop.regs_per_block;
  compute.regs_per_sm = prop.regs_per_multiprocessor;
  compute.cu_physical_ids = runtime::logical_to_physical_cu(gpu);

  // --- Memory resources (paper III-C, IV): the benchmark suite. ------------
  if (gpu.spec().vendor == sim::Vendor::kNvidia) {
    detail::collect_nvidia(ctx);
  } else {
    detail::collect_amd(ctx);
  }

  // --- Compute capability (paper Sec. VII extension, opt-in). --------------
  if (options.measure_compute && !options.only) {
    for (const auto& result : run_compute_suite(gpu)) {
      ctx.book_seconds(0.01);  // each FMA-stream kernel is a short launch
      ctx.report.compute_throughput.push_back(
          {sim::dtype_name(result.dtype), result.achieved_ops_per_s,
           result.best_blocks, result.threads_per_block});
    }
  }

  ctx.report.chase_memo_hits = ctx.chase_pool.memo_stats.hits;
  ctx.report.chase_memo_misses = ctx.chase_pool.memo_stats.misses;
  return ctx.report;
}

}  // namespace mt4g::core
