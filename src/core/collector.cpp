#include "core/collector.hpp"

#include <algorithm>

#include "core/pipeline/runner.hpp"
#include "exec/executor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/device.hpp"

namespace mt4g::core {

bool DiscoverOptions::wants(sim::Element element) const {
  return only.empty() ||
         std::find(only.begin(), only.end(), element) != only.end();
}

TopologyReport discover(sim::Gpu& gpu, const DiscoverOptions& options) {
  const obs::SpanGuard span("discovery:", gpu.spec().name);
  // Per-discovery metric attribution: snapshot the registry (and the shared
  // executor's counters) before the run, diff after. Only an opt-in
  // observability run pays for this — and only then does meta.wall appear in
  // the report, keeping default output byte-identical.
  const bool attribute = obs::metrics_enabled();
  std::vector<obs::MetricSample> before;
  exec::ExecutorStats exec_before;
  std::uint64_t start_ns = 0;
  if (attribute) {
    before = obs::Metrics::instance().snapshot();
    exec_before = exec::shared_executor().stats();
    start_ns = obs::monotonic_ns();
  }

  TopologyReport report;
  const runtime::DeviceProp prop = runtime::get_device_prop(gpu);

  // --- General information (paper III-A): entirely from the device API. ----
  GeneralInfo& general = report.general;
  general.gpu_name = gpu.spec().name;
  general.vendor = prop.vendor;
  general.model = prop.name;
  general.microarchitecture = prop.microarchitecture;
  general.compute_capability = prop.compute_capability;
  general.clock_mhz = prop.clock_mhz;
  general.memory_clock_mhz = prop.memory_clock_mhz;
  general.memory_bus_bits = prop.memory_bus_bits;

  // --- Compute resources (paper III-B): API + cores-per-SM lookup table. ---
  ComputeInfo& compute = report.compute;
  compute.num_sms = prop.multi_processor_count;
  compute.cores_per_sm =
      runtime::cores_per_sm_lookup(prop.microarchitecture);
  compute.num_cores_total = compute.num_sms * compute.cores_per_sm;
  compute.warp_size = prop.warp_size;
  compute.warps_per_sm =
      prop.warp_size ? prop.max_threads_per_multiprocessor / prop.warp_size : 0;
  compute.max_threads_per_block = prop.max_threads_per_block;
  compute.max_threads_per_sm = prop.max_threads_per_multiprocessor;
  compute.max_blocks_per_sm = prop.max_blocks_per_multiprocessor;
  compute.regs_per_block = prop.regs_per_block;
  compute.regs_per_sm = prop.regs_per_multiprocessor;
  compute.cu_physical_ids = runtime::logical_to_physical_cu(gpu);

  // --- Memory resources + compute capability (paper III-C, IV, VII): the
  // benchmark suite as a declarative stage graph, pruned to the --only
  // restriction and executed with benchmark-level concurrency under
  // options.bench_threads (core/pipeline/).
  pipeline::DiscoveryPlan plan = gpu.spec().vendor == sim::Vendor::kNvidia
                                     ? pipeline::nvidia_stages(gpu, options)
                                     : pipeline::amd_stages(gpu, options);
  pipeline::run_graph(gpu, plan, options, report);

  if (attribute) {
    obs::Metrics& metrics = obs::Metrics::instance();
    const exec::ExecutorStats exec_after = exec::shared_executor().stats();
    metrics.add("exec.tasks",
                static_cast<double>(exec_after.tasks - exec_before.tasks));
    metrics.set("exec.worker_busy_fraction", exec_after.worker_busy_fraction);
    metrics.set("exec.queue_depth_max",
                static_cast<double>(exec_after.max_queue_depth));
    report.wall.enabled = true;
    report.wall.wall_seconds =
        static_cast<double>(obs::monotonic_ns() - start_ns) * 1e-9;
    for (const obs::MetricSample& sample :
         obs::Metrics::delta(before, metrics.snapshot())) {
      report.wall.samples.push_back({sample.name,
                                     obs::metric_kind_name(sample.kind),
                                     sample.value, sample.count});
    }
  }
  return report;
}

}  // namespace mt4g::core
