// Graph state + per-stage booking: what a running stage reads and writes.
//
// The split replaces the old CollectorContext (collector_detail.hpp), which
// accumulated directly into the TopologyReport while the vendor collectors
// walked their element lists serially. Under concurrent stage execution the
// state is divided by synchronisation discipline:
//   * GraphState — the data-flow blackboard. Every entry is created before
//     the graph runs (no rehash/insert races); a stage only reads values its
//     declared dependencies wrote, and the runner's scheduling gives every
//     dependency a happens-before edge to its dependents. Sibling stages of
//     one element write disjoint row fields.
//   * StageContext — the per-stage side: the substrate Gpu, the stage's
//     chase pool (upstream-linked to its ancestors' pools) and the booking
//     accumulators, merged into the report in declaration order after the
//     graph drains (runner.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/collector.hpp"
#include "core/report.hpp"
#include "runtime/batch.hpp"
#include "sim/gpu.hpp"

namespace mt4g::core::pipeline {

/// Data-flow state of one memory element, written by its fg/size stages and
/// read by every dependent stage of the element (and, for the constant
/// hierarchy and sharing benchmarks, by stages of other elements).
struct ElementState {
  std::uint32_t fg = 0;     ///< detected fetch granularity; 0 = not (yet) run
  std::uint64_t size = 0;   ///< detected capacity in bytes; 0 = not found
};

/// The blackboard shared by all stages of one graph run.
struct GraphState {
  /// Per-element data flow; entries pre-created for every element the graph
  /// mentions, so concurrent access never mutates the map structure.
  std::map<sim::Element, ElementState> element;
  /// Report rows under construction, pre-created with their API-provenance
  /// attributes at build time. Sibling stages write disjoint fields.
  std::map<sim::Element, MemoryElementReport> rows;
  /// AMD sL1d CU-sharing result (one writer stage).
  CuSharingInfo cu_sharing;
  /// NVIDIA: the L2 segment stage publishes the per-segment capacity the
  /// L2 line-size stage sweeps over (API total until the stage runs).
  std::uint64_t l2_segment_bytes = 0;

  ElementState& of(sim::Element e) { return element.at(e); }
  const ElementState& of(sim::Element e) const { return element.at(e); }
  /// Lookup that tolerates absent elements (e.g. the Const L1 state from a
  /// CL1.5 stage on a spec without a Const L1): returns a default state.
  ElementState get(sim::Element e) const {
    const auto it = element.find(e);
    return it == element.end() ? ElementState{} : it->second;
  }
  MemoryElementReport& row(sim::Element e) { return rows.at(e); }
};

/// Deterministic per-stage accounting, merged in declaration order.
struct StageBooking {
  std::uint32_t benchmarks = 0;      ///< -> TopologyReport::benchmarks_executed
  std::uint64_t cycles = 0;          ///< -> total_cycles (incl. kernel cycles)
  double seconds = 0.0;              ///< -> simulated_seconds
  std::uint32_t sweep_widenings = 0;
  std::uint64_t sweep_cycles = 0;
  std::uint64_t line_size_cycles = 0;
  std::uint64_t amount_cycles = 0;
  std::uint64_t sharing_cycles = 0;
  std::uint64_t bandwidth_cycles = 0;  ///< stream-kernel cycles (from seconds)
  std::uint64_t compute_cycles = 0;    ///< compute-suite cycles (from seconds)
};

/// Everything one running stage touches. Created by the runner per stage.
struct StageContext {
  sim::Gpu& gpu;  ///< stage substrate: fork of the owner, owner's seed
  const DiscoverOptions& options;
  GraphState& state;
  /// Stage-local replicas + chase memo; upstream points at the pools of the
  /// stage's completed transitive dependencies (declaration order).
  runtime::ReplicaPool& chase_pool;
  StageBooking booking;
  /// Reduction series recorded by this stage (collect_series runs), merged
  /// into TopologyReport::series in declaration order.
  std::vector<SizeSeries> series;
  /// Compute-throughput rows recorded by the compute stage.
  std::vector<ComputeThroughputReport> compute_throughput;

  /// Books one executed microbenchmark and its simulated cycles.
  void book(std::uint64_t cycles) {
    ++booking.benchmarks;
    booking.cycles += cycles;
    booking.seconds +=
        static_cast<double>(cycles) / (gpu.spec().clock_mhz * 1e6);
  }

  /// Books the sweep-engine telemetry of one size benchmark.
  void book_sweep(std::uint32_t widenings, std::uint64_t sweep_cycles) {
    booking.sweep_widenings += widenings;
    booking.sweep_cycles += sweep_cycles;
  }

  /// Per-benchmark cycle attribution (called alongside book()).
  void book_line_size(std::uint64_t cycles) {
    booking.line_size_cycles += cycles;
  }
  void book_amount(std::uint64_t cycles) { booking.amount_cycles += cycles; }
  void book_sharing(std::uint64_t cycles) { booking.sharing_cycles += cycles; }

  /// Books one kernel benchmark measured in wall seconds (bandwidth streams,
  /// compute suite). The seconds are converted to cycles at the spec clock
  /// and attributed like every chase benchmark — previously these stages
  /// bypassed total_cycles entirely, leaving a blind spot in the
  /// BENCH_discovery.json breakdown.
  void book_kernel_seconds(double seconds, std::uint64_t& bucket) {
    ++booking.benchmarks;
    booking.seconds += seconds;
    const auto cycles = static_cast<std::uint64_t>(
        seconds * gpu.spec().clock_mhz * 1e6 + 0.5);
    booking.cycles += cycles;
    bucket += cycles;
  }
  void book_bandwidth_seconds(double seconds) {
    book_kernel_seconds(seconds, booking.bandwidth_cycles);
  }
  void book_compute_seconds(double seconds) {
    book_kernel_seconds(seconds, booking.compute_cycles);
  }
};

}  // namespace mt4g::core::pipeline
