// The stage-graph executor: runs ready stages concurrently and assembles
// the TopologyReport deterministically.
//
// Scheduling model: with bench_threads <= 1 the stages run serially in
// deterministic topological order (smallest declaration index first). With
// bench_threads > 1, min(bench_threads, stage count) workers — the calling
// thread included — pull ready stages (all dependencies completed, lowest
// declaration index first) from a shared queue on the process-wide executor
// (src/exec/). Nested parallelism composes: a stage's own chase batches
// (sweep_threads) fan over the same pool, and a fleet sweep fans whole
// graphs of different GPUs over it, so one executor interleaves stages
// across benchmarks and across GPUs.
//
// Determinism: the report is byte-identical for every bench_threads x
// sweep_threads combination (see stage.hpp for the three rules). Failure
// handling follows the executor's convention: every runnable stage still
// runs, stages downstream of a failed stage are skipped, and the exception
// of the lowest-declaration-index failing stage is rethrown afterwards — so
// the error a caller observes is independent of scheduling.
#pragma once

#include "core/collector.hpp"
#include "core/pipeline/context.hpp"
#include "core/pipeline/stage.hpp"
#include "core/report.hpp"

namespace mt4g::core::pipeline {

/// A buildable discovery: the validated stage table plus the pre-created
/// blackboard (rows seeded with their API-provenance attributes).
struct DiscoveryPlan {
  StageGraph graph;
  GraphState state;
};

/// The vendor stage tables (stages_nvidia.cpp / stages_amd.cpp): every
/// benchmark of the suite as data, validated before returning. @p gpu is
/// only read (spec + device APIs) to decide which stages exist.
DiscoveryPlan nvidia_stages(sim::Gpu& gpu, const DiscoverOptions& options);
DiscoveryPlan amd_stages(sim::Gpu& gpu, const DiscoverOptions& options);

/// Prunes plan.graph to options.only (+ transitive dependencies), executes
/// the graph against @p gpu, and merges rows, bookings, per-stage cycles,
/// critical path and memo statistics into @p report in declaration order.
void run_graph(sim::Gpu& gpu, DiscoveryPlan& plan,
               const DiscoverOptions& options, TopologyReport& report);

}  // namespace mt4g::core::pipeline
