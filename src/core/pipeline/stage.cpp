#include "core/pipeline/stage.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <unordered_map>

namespace mt4g::core::pipeline {

std::string stage_kind_name(StageKind kind) {
  switch (kind) {
    case StageKind::kFetchGranularity: return "fetch_granularity";
    case StageKind::kSize: return "size";
    case StageKind::kLatency: return "latency";
    case StageKind::kLineSize: return "line_size";
    case StageKind::kAmount: return "amount";
    case StageKind::kSharing: return "sharing";
    case StageKind::kBandwidth: return "bandwidth";
    case StageKind::kCompute: return "compute";
  }
  return "?";
}

std::size_t StageGraph::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (stages[i].name == name) return i;
  }
  return npos;
}

namespace {

/// name -> declaration index, throwing on duplicates.
std::unordered_map<std::string, std::size_t> name_index(
    const StageGraph& graph) {
  std::unordered_map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < graph.stages.size(); ++i) {
    const auto [it, inserted] = index.emplace(graph.stages[i].name, i);
    if (!inserted) {
      throw std::invalid_argument("stage graph: duplicate stage name '" +
                                  graph.stages[i].name + "'");
    }
  }
  return index;
}

/// Dependency indices per stage; throws on unknown or self dependencies.
std::vector<std::vector<std::size_t>> dep_indices(const StageGraph& graph) {
  const auto index = name_index(graph);
  std::vector<std::vector<std::size_t>> deps(graph.stages.size());
  for (std::size_t i = 0; i < graph.stages.size(); ++i) {
    for (const std::string& dep : graph.stages[i].deps) {
      const auto it = index.find(dep);
      if (it == index.end()) {
        throw std::invalid_argument("stage graph: stage '" +
                                    graph.stages[i].name +
                                    "' depends on unknown stage '" + dep +
                                    "'");
      }
      if (it->second == i) {
        throw std::invalid_argument("stage graph: stage '" +
                                    graph.stages[i].name +
                                    "' depends on itself");
      }
      deps[i].push_back(it->second);
    }
  }
  return deps;
}

/// Kahn's algorithm with a smallest-declaration-index ready set. Throws on
/// cycles, naming every stage on one.
std::vector<std::size_t> kahn_order(
    const StageGraph& graph, const std::vector<std::vector<std::size_t>>& deps) {
  const std::size_t n = graph.stages.size();
  std::vector<std::size_t> remaining(n, 0);
  std::vector<std::vector<std::size_t>> dependents(n);
  for (std::size_t i = 0; i < n; ++i) {
    remaining[i] = deps[i].size();
    for (const std::size_t d : deps[i]) dependents[d].push_back(i);
  }
  std::set<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (remaining[i] == 0) ready.insert(i);
  }
  std::vector<std::size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t next = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(next);
    for (const std::size_t dependent : dependents[next]) {
      if (--remaining[dependent] == 0) ready.insert(dependent);
    }
  }
  if (order.size() != n) {
    std::string cycle;
    for (std::size_t i = 0; i < n; ++i) {
      if (remaining[i] > 0) {
        if (!cycle.empty()) cycle += ", ";
        cycle += graph.stages[i].name;
      }
    }
    throw std::invalid_argument(
        "stage graph: dependency cycle involving stages [" + cycle + "]");
  }
  return order;
}

}  // namespace

GraphAnalysis analyze(const StageGraph& graph) {
  GraphAnalysis analysis;
  analysis.deps = dep_indices(graph);
  analysis.order = kahn_order(graph, analysis.deps);
  for (const Stage& stage : graph.stages) {
    if (!stage.run) {
      throw std::invalid_argument("stage graph: stage '" + stage.name +
                                  "' has no run function");
    }
  }
  std::vector<std::set<std::size_t>> closure(graph.stages.size());
  for (const std::size_t i : analysis.order) {
    for (const std::size_t d : analysis.deps[i]) {
      closure[i].insert(d);
      closure[i].insert(closure[d].begin(), closure[d].end());
    }
  }
  analysis.ancestors.resize(graph.stages.size());
  for (std::size_t i = 0; i < graph.stages.size(); ++i) {
    analysis.ancestors[i].assign(closure[i].begin(),
                                 closure[i].end());  // sorted by index
  }
  return analysis;
}

void validate(const StageGraph& graph) { analyze(graph); }

std::vector<std::size_t> topological_order(const StageGraph& graph) {
  return kahn_order(graph, dep_indices(graph));
}

std::vector<std::vector<std::size_t>> dependency_indices(
    const StageGraph& graph) {
  return dep_indices(graph);
}

std::vector<std::vector<std::size_t>> ancestor_sets(const StageGraph& graph) {
  return analyze(graph).ancestors;
}

void prune(StageGraph& graph, const std::vector<sim::Element>& only) {
  if (only.empty()) return;
  const auto ancestors = ancestor_sets(graph);  // validates as a side effect
  std::vector<bool> keep(graph.stages.size(), false);
  for (std::size_t i = 0; i < graph.stages.size(); ++i) {
    const Stage& stage = graph.stages[i];
    if (stage.full_run_only) continue;
    if (std::find(only.begin(), only.end(), stage.element) == only.end()) {
      continue;
    }
    keep[i] = true;
    for (const std::size_t a : ancestors[i]) keep[a] = true;
  }
  StageGraph pruned;
  pruned.row_order = graph.row_order;
  for (std::size_t i = 0; i < graph.stages.size(); ++i) {
    if (keep[i]) pruned.stages.push_back(std::move(graph.stages[i]));
  }
  graph = std::move(pruned);
}

}  // namespace mt4g::core::pipeline
