// Shared stage factories: the benchmark-option blocks that were repeated
// near-identically across collector_nvidia.cpp and collector_amd.cpp, once.
//
// A FirstLevelPlan describes one first-level cache (NVIDIA L1 / Texture /
// ReadOnly / Constant L1, AMD vL1 / sL1d) and expands into its
// fg -> size -> {latency, line-size} stage chain; the amount stage is added
// separately (NVIDIA runs it for every first-level cache, AMD only for
// vL1). The option builders are exposed individually for the stages that
// need custom wiring (the constant L1.5 hierarchy, the L2 complex).
#pragma once

#include <cstdint>

#include "core/benchmarks/amount.hpp"
#include "core/benchmarks/fetch_granularity.hpp"
#include "core/benchmarks/latency.hpp"
#include "core/benchmarks/line_size.hpp"
#include "core/benchmarks/size.hpp"
#include "core/pipeline/context.hpp"
#include "core/pipeline/stage.hpp"
#include "core/target.hpp"

namespace mt4g::core::pipeline {

/// One first-level cache's benchmark parameters.
struct FirstLevelPlan {
  sim::Vendor vendor = sim::Vendor::kNvidia;
  sim::Element element = sim::Element::kL1;
  std::string prefix;                 ///< stage-name prefix, e.g. "L1"
  std::uint64_t size_lower = 1024;    ///< size-benchmark search bounds
  std::uint64_t size_upper = 1024 * 1024;
  std::uint64_t latency_min_array = 0;
  std::uint32_t fg_fallback = 32;     ///< stride when no unimodal stride found
  /// Report ">upper" when the sweep hit the bound without a miss cliff
  /// (NVIDIA behaviour); AMD reports a plain "no change point".
  bool report_upper_bound = true;
};

/// Stage names of the plan's chain ("<prefix>.<suffix>").
std::string stage_name(const std::string& prefix, StageKind kind);

// --- Option-block builders (each books nothing; callers book). -------------

FgBenchOptions make_fg_options(StageContext& ctx, const Target& target);
SizeBenchOptions make_size_options(StageContext& ctx, const Target& target,
                                   std::uint64_t lower, std::uint64_t upper,
                                   std::uint32_t stride);
LatencyBenchOptions make_latency_options(StageContext& ctx,
                                         const Target& target,
                                         std::uint32_t fetch_granularity,
                                         std::uint64_t min_array_bytes,
                                         std::uint64_t cache_bytes);
LineSizeBenchOptions make_line_options(StageContext& ctx, const Target& target,
                                       std::uint64_t cache_bytes,
                                       std::uint32_t fetch_granularity);
AmountBenchOptions make_amount_options(StageContext& ctx, const Target& target,
                                       std::uint64_t cache_bytes,
                                       std::uint32_t stride);

/// Attribute for a line-size result ("inconclusive" when not found).
Attribute line_size_attribute(const LineSizeBenchResult& line);

/// Runs a size benchmark: books cycles + sweep telemetry, records the
/// series when requested, and returns the result for row handling.
SizeBenchResult run_size_stage(StageContext& ctx, sim::Element element,
                               const SizeBenchOptions& options);

/// Adds the fg -> size -> {latency, line} chain of one first-level cache.
void add_first_level_stages(StageGraph& graph, const FirstLevelPlan& plan);

/// Adds the amount stage of one first-level cache (depends on its size).
void add_amount_stage(StageGraph& graph, const FirstLevelPlan& plan);

/// Adds a stream-kernel bandwidth stage (L2 / L3 / device memory).
/// @param bytes data volume; 0 = 4x the element capacity.
void add_bandwidth_stage(StageGraph& graph, const std::string& prefix,
                         sim::Element element, std::uint64_t bytes);

/// Adds a scratchpad (Shared Memory / LDS) latency stage.
void add_scratchpad_stage(StageGraph& graph, const std::string& prefix,
                          sim::Element element);

/// Adds the cold device-memory latency stage (every load falls through).
void add_device_latency_stage(StageGraph& graph, sim::Vendor vendor,
                              std::uint32_t fetch_granularity);

/// Adds the opt-in per-dtype compute-capability suite (full runs only).
void add_compute_stage(StageGraph& graph);

}  // namespace mt4g::core::pipeline
