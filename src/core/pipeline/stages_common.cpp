#include "core/pipeline/stages_common.hpp"

#include "common/units.hpp"
#include "core/benchmarks/bandwidth.hpp"
#include "core/benchmarks/compute.hpp"

namespace mt4g::core::pipeline {

std::string stage_name(const std::string& prefix, StageKind kind) {
  switch (kind) {
    case StageKind::kFetchGranularity: return prefix + ".fg";
    case StageKind::kSize: return prefix + ".size";
    case StageKind::kLatency: return prefix + ".latency";
    case StageKind::kLineSize: return prefix + ".line";
    case StageKind::kAmount: return prefix + ".amount";
    case StageKind::kSharing: return prefix + ".sharing";
    case StageKind::kBandwidth: return prefix + ".bandwidth";
    case StageKind::kCompute: return prefix + ".compute";
  }
  return prefix + ".?";
}

FgBenchOptions make_fg_options(StageContext& ctx, const Target& target) {
  FgBenchOptions options;
  options.target = target;
  options.record_count = ctx.options.record_count;
  options.threads = ctx.options.sweep_threads;
  options.chase_pool = &ctx.chase_pool;
  return options;
}

SizeBenchOptions make_size_options(StageContext& ctx, const Target& target,
                                   std::uint64_t lower, std::uint64_t upper,
                                   std::uint32_t stride) {
  SizeBenchOptions options;
  options.target = target;
  options.lower = lower;
  options.upper = upper;
  options.stride = stride;
  options.record_count = ctx.options.record_count;
  options.sweep_threads = ctx.options.sweep_threads;
  options.chase_pool = &ctx.chase_pool;
  return options;
}

LatencyBenchOptions make_latency_options(StageContext& ctx,
                                         const Target& target,
                                         std::uint32_t fetch_granularity,
                                         std::uint64_t min_array_bytes,
                                         std::uint64_t cache_bytes) {
  LatencyBenchOptions options;
  options.target = target;
  options.fetch_granularity = fetch_granularity;
  options.min_array_bytes = min_array_bytes;
  options.cache_bytes = cache_bytes;
  options.threads = ctx.options.sweep_threads;
  options.chase_pool = &ctx.chase_pool;
  return options;
}

LineSizeBenchOptions make_line_options(StageContext& ctx, const Target& target,
                                       std::uint64_t cache_bytes,
                                       std::uint32_t fetch_granularity) {
  LineSizeBenchOptions options;
  options.target = target;
  options.cache_bytes = cache_bytes;
  options.fetch_granularity = fetch_granularity;
  options.threads = ctx.options.sweep_threads;
  options.chase_pool = &ctx.chase_pool;
  return options;
}

AmountBenchOptions make_amount_options(StageContext& ctx, const Target& target,
                                       std::uint64_t cache_bytes,
                                       std::uint32_t stride) {
  AmountBenchOptions options;
  options.target = target;
  options.cache_bytes = cache_bytes;
  options.stride = stride;
  options.record_count = ctx.options.record_count;
  options.threads = ctx.options.sweep_threads;
  options.chase_pool = &ctx.chase_pool;
  return options;
}

Attribute line_size_attribute(const LineSizeBenchResult& line) {
  return line.found
             ? Attribute::benchmarked(line.line_bytes, line.confidence)
             : Attribute::unavailable("inconclusive");
}

SizeBenchResult run_size_stage(StageContext& ctx, sim::Element element,
                               const SizeBenchOptions& options) {
  const SizeBenchResult size = run_size_benchmark(ctx.gpu, options);
  ctx.book(size.cycles);
  ctx.book_sweep(size.widenings, size.sweep_cycles);
  if (ctx.options.collect_series && !size.sweep_sizes.empty()) {
    ctx.series.push_back(
        SizeSeries{element, size.sweep_sizes, size.reduced, size.exact_bytes});
  }
  return size;
}

void add_first_level_stages(StageGraph& graph, const FirstLevelPlan& plan) {
  const sim::Element element = plan.element;
  const std::string fg_stage =
      stage_name(plan.prefix, StageKind::kFetchGranularity);
  const std::string size_stage = stage_name(plan.prefix, StageKind::kSize);

  // Fetch granularity first: it is the step size of everything that follows.
  graph.add({fg_stage, element, StageKind::kFetchGranularity, {}, false,
             [plan](StageContext& ctx) {
               const Target target = target_for(plan.vendor, plan.element);
               const auto fg =
                   run_fg_benchmark(ctx.gpu, make_fg_options(ctx, target));
               ctx.book(fg.cycles);
               ctx.state.row(plan.element).fetch_granularity =
                   fg.found ? Attribute::benchmarked(fg.granularity)
                            : Attribute::unavailable("no unimodal stride");
               ctx.state.of(plan.element).fg =
                   fg.found ? fg.granularity : plan.fg_fallback;
             }});

  // Size via the K-S workflow.
  graph.add({size_stage, element, StageKind::kSize, {fg_stage}, false,
             [plan](StageContext& ctx) {
               const Target target = target_for(plan.vendor, plan.element);
               const auto size = run_size_stage(
                   ctx, plan.element,
                   make_size_options(ctx, target, plan.size_lower,
                                     plan.size_upper,
                                     ctx.state.of(plan.element).fg));
               MemoryElementReport& row = ctx.state.row(plan.element);
               if (size.found) {
                 row.size = Attribute::benchmarked(
                     static_cast<double>(size.exact_bytes), size.confidence);
                 ctx.state.of(plan.element).size = size.exact_bytes;
               } else if (plan.report_upper_bound && size.upper_bound_hit) {
                 row.size = Attribute::unavailable(
                     ">" + format_bytes(plan.size_upper));
               } else {
                 row.size = Attribute::unavailable("no change point");
               }
             }});

  // Load latency (within the detected capacity so the timed pass hits).
  graph.add({stage_name(plan.prefix, StageKind::kLatency), element,
             StageKind::kLatency, {fg_stage, size_stage}, false,
             [plan](StageContext& ctx) {
               const Target target = target_for(plan.vendor, plan.element);
               const ElementState& state = ctx.state.of(plan.element);
               const auto latency = run_latency_benchmark(
                   ctx.gpu,
                   make_latency_options(ctx, target, state.fg,
                                        plan.latency_min_array, state.size));
               ctx.book(latency.cycles);
               MemoryElementReport& row = ctx.state.row(plan.element);
               row.load_latency = Attribute::benchmarked(latency.headline);
               row.latency_stats = latency.summary;
             }});

  // Cache line size (requires the detected size).
  graph.add({stage_name(plan.prefix, StageKind::kLineSize), element,
             StageKind::kLineSize, {fg_stage, size_stage}, false,
             [plan](StageContext& ctx) {
               const ElementState& state = ctx.state.of(plan.element);
               MemoryElementReport& row = ctx.state.row(plan.element);
               if (state.size == 0) {
                 row.cache_line = Attribute::unavailable("cache size unknown");
                 return;
               }
               const Target target = target_for(plan.vendor, plan.element);
               const auto line = run_line_size_benchmark(
                   ctx.gpu,
                   make_line_options(ctx, target, state.size, state.fg));
               ctx.book(line.cycles);
               ctx.book_line_size(line.cycles);
               row.cache_line = line_size_attribute(line);
             }});
}

void add_amount_stage(StageGraph& graph, const FirstLevelPlan& plan) {
  graph.add({stage_name(plan.prefix, StageKind::kAmount), plan.element,
             StageKind::kAmount,
             {stage_name(plan.prefix, StageKind::kSize)}, false,
             [plan](StageContext& ctx) {
               const ElementState& state = ctx.state.of(plan.element);
               MemoryElementReport& row = ctx.state.row(plan.element);
               if (state.size == 0) {
                 row.amount = Attribute::unavailable("cache size unknown");
                 return;
               }
               const Target target = target_for(plan.vendor, plan.element);
               const auto amount = run_amount_benchmark(
                   ctx.gpu,
                   make_amount_options(ctx, target, state.size, state.fg));
               ctx.book(amount.cycles);
               ctx.book_amount(amount.cycles);
               row.amount = amount.available
                                ? Attribute::benchmarked(amount.amount)
                                : Attribute::unavailable(
                                      "cache smaller than one stride");
             }});
}

void add_bandwidth_stage(StageGraph& graph, const std::string& prefix,
                         sim::Element element, std::uint64_t bytes) {
  graph.add({stage_name(prefix, StageKind::kBandwidth), element,
             StageKind::kBandwidth, {}, false, [element, bytes](StageContext& ctx) {
               BandwidthBenchOptions options;
               options.target = element;
               options.bytes = bytes;
               const auto bw = run_bandwidth_benchmark(ctx.gpu, options);
               // Read and write are two benchmarks sharing one launch.
               ctx.book_bandwidth_seconds(bw.seconds / 2);
               ctx.book_bandwidth_seconds(bw.seconds / 2);
               MemoryElementReport& row = ctx.state.row(element);
               row.read_bandwidth =
                   Attribute::benchmarked(bw.read_bytes_per_s);
               row.write_bandwidth =
                   Attribute::benchmarked(bw.write_bytes_per_s);
             }});
}

void add_scratchpad_stage(StageGraph& graph, const std::string& prefix,
                          sim::Element element) {
  graph.add({stage_name(prefix, StageKind::kLatency), element,
             StageKind::kLatency, {}, false, [element](StageContext& ctx) {
               // Scratchpads need no targeting machinery: one chase on the
               // stage substrate (deterministic noise stream per stage).
               const auto latency = run_scratchpad_latency(ctx.gpu);
               ctx.book(latency.cycles);
               MemoryElementReport& row = ctx.state.row(element);
               row.load_latency = Attribute::benchmarked(latency.headline);
               row.latency_stats = latency.summary;
             }});
}

void add_device_latency_stage(StageGraph& graph, sim::Vendor vendor,
                              std::uint32_t fetch_granularity) {
  graph.add({stage_name("DMEM", StageKind::kLatency), sim::Element::kDeviceMem,
             StageKind::kLatency, {}, false,
             [vendor, fetch_granularity](StageContext& ctx) {
               const Target target =
                   target_for(vendor, sim::Element::kDeviceMem);
               LatencyBenchOptions options = make_latency_options(
                   ctx, target, fetch_granularity, /*min_array_bytes=*/0,
                   /*cache_bytes=*/0);
               options.cold = true;  // every load must fall through to DRAM
               const auto latency = run_latency_benchmark(ctx.gpu, options);
               ctx.book(latency.cycles);
               MemoryElementReport& row =
                   ctx.state.row(sim::Element::kDeviceMem);
               row.load_latency = Attribute::benchmarked(latency.headline);
               row.latency_stats = latency.summary;
             }});
}

void add_compute_stage(StageGraph& graph) {
  graph.add({"compute.suite", sim::Element::kDeviceMem, StageKind::kCompute,
             {}, /*full_run_only=*/true, [](StageContext& ctx) {
               for (const auto& result : run_compute_suite(ctx.gpu)) {
                 // Each FMA-stream kernel is a short launch.
                 ctx.book_compute_seconds(0.01);
                 ctx.compute_throughput.push_back(
                     {sim::dtype_name(result.dtype), result.achieved_ops_per_s,
                      result.best_blocks, result.threads_per_block});
               }
             }});
}

}  // namespace mt4g::core::pipeline
