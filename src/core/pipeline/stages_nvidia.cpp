// NVIDIA stage table: the full microbenchmark suite over the NVIDIA memory
// elements (paper Table I, upper half) as declarative stages.
#include <algorithm>

#include "common/units.hpp"
#include "core/benchmarks/bandwidth.hpp"
#include "core/benchmarks/sharing.hpp"
#include "core/pipeline/runner.hpp"
#include "core/pipeline/stages_common.hpp"
#include "runtime/device.hpp"

namespace mt4g::core::pipeline {
namespace {

using sim::Element;

/// NVIDIA's constant arrays are capped at 64 KiB (paper Sec. III-C / [38]).
constexpr std::uint64_t kConstantArrayLimit = 64 * KiB;

std::string short_name(Element element) {
  switch (element) {
    case Element::kL1: return "L1";
    case Element::kTexture: return "TEX";
    case Element::kReadOnly: return "RO";
    case Element::kConstL1: return "CO";
    default: return sim::element_name(element);
  }
}

/// Creates the blackboard entry + row skeleton of one element.
MemoryElementReport& add_row(DiscoveryPlan& plan, Element element) {
  plan.state.element[element];
  plan.graph.row_order.push_back(element);
  MemoryElementReport& row = plan.state.rows[element];
  row.element = element;
  return row;
}

/// The Constant L1.5 stage chain (between Constant L1 and L2): custom
/// wiring because every benchmark feeds on the Const L1 results to thrash
/// the level above the benchmarked cache.
void add_const_l15_stages(DiscoveryPlan& plan, bool has_const_l1) {
  const Target target = target_for(sim::Vendor::kNvidia, Element::kConstL15);
  std::vector<std::string> cl1_deps;
  if (has_const_l1) cl1_deps = {"CO.fg", "CO.size"};

  auto cl1_state = [](StageContext& ctx) {
    ElementState state = ctx.state.get(Element::kConstL1);
    if (state.size == 0) state.size = 2 * KiB;
    if (state.fg == 0) state.fg = 64;
    return state;
  };

  plan.graph.add(
      {"CL15.fg", Element::kConstL15, StageKind::kFetchGranularity, cl1_deps,
       false, [target, cl1_state](StageContext& ctx) {
         const ElementState cl1 = cl1_state(ctx);
         FgBenchOptions options = make_fg_options(ctx, target);
         // Stay beyond the Const L1 capacity so its hits don't mask the
         // pattern.
         options.min_array_bytes = 2 * cl1.size;
         const auto fg = run_fg_benchmark(ctx.gpu, options);
         ctx.book(fg.cycles);
         ctx.state.row(Element::kConstL15).fetch_granularity =
             fg.found ? Attribute::benchmarked(fg.granularity)
                      : Attribute::unavailable("no unimodal stride");
         ctx.state.of(Element::kConstL15).fg =
             fg.found ? fg.granularity : cl1.fg;
       }});

  std::vector<std::string> size_deps = {"CL15.fg"};
  size_deps.insert(size_deps.end(), cl1_deps.begin(), cl1_deps.end());
  plan.graph.add(
      {"CL15.size", Element::kConstL15, StageKind::kSize, size_deps, false,
       [target, cl1_state](StageContext& ctx) {
         const ElementState cl1 = cl1_state(ctx);
         const auto size = run_size_stage(
             ctx, Element::kConstL15,
             make_size_options(
                 ctx, target,
                 std::max<std::uint64_t>(2 * cl1.size, 4 * KiB),
                 kConstantArrayLimit,  // the hard 64 KiB wall
                 ctx.state.of(Element::kConstL15).fg));
         MemoryElementReport& row = ctx.state.row(Element::kConstL15);
         if (size.found) {
           row.size = Attribute::benchmarked(
               static_cast<double>(size.exact_bytes), size.confidence);
           ctx.state.of(Element::kConstL15).size = size.exact_bytes;
         } else {
           // The array limit truncates the search: report the bound,
           // confidence 0 (paper Table III: ">64KiB").
           row.size = Attribute{Provenance::kBenchmark,
                                static_cast<double>(kConstantArrayLimit), 0.0,
                                ">" + format_bytes(kConstantArrayLimit)};
         }
       }});

  std::vector<std::string> latency_deps = {"CL15.fg", "CL15.size"};
  latency_deps.insert(latency_deps.end(), cl1_deps.begin(), cl1_deps.end());
  plan.graph.add(
      {"CL15.latency", Element::kConstL15, StageKind::kLatency, latency_deps,
       false, [target, cl1_state](StageContext& ctx) {
         const ElementState cl1 = cl1_state(ctx);
         const ElementState& cl15 = ctx.state.of(Element::kConstL15);
         const auto latency = run_latency_benchmark(
             ctx.gpu, make_latency_options(ctx, target, cl15.fg,
                                           /*min_array_bytes=*/4 * cl1.size,
                                           cl15.size));
         ctx.book(latency.cycles);
         MemoryElementReport& row = ctx.state.row(Element::kConstL15);
         row.load_latency = Attribute::benchmarked(latency.headline);
         row.latency_stats = latency.summary;
       }});

  plan.graph.add(
      {"CL15.line", Element::kConstL15, StageKind::kLineSize,
       {"CL15.fg", "CL15.size"}, false, [target](StageContext& ctx) {
         const ElementState& cl15 = ctx.state.of(Element::kConstL15);
         MemoryElementReport& row = ctx.state.row(Element::kConstL15);
         if (cl15.size == 0) {
           // Line size takes the cache size as input (paper Sec. V).
           row.cache_line =
               Attribute::unavailable("cache size not determined");
           return;
         }
         const auto line = run_line_size_benchmark(
             ctx.gpu, make_line_options(ctx, target, cl15.size, cl15.fg));
         ctx.book(line.cycles);
         ctx.book_line_size(line.cycles);
         row.cache_line = line_size_attribute(line);
       }});
}

/// The L2 complex: fg, latency, segment count (the size benchmark variant),
/// line size over one segment, and the stream-kernel bandwidth.
void add_l2_stages(DiscoveryPlan& plan, const runtime::DeviceProp& prop) {
  const Target target = target_for(sim::Vendor::kNvidia, Element::kL2);

  plan.graph.add(
      {"L2.fg", Element::kL2, StageKind::kFetchGranularity, {}, false,
       [target](StageContext& ctx) {
         const auto fg = run_fg_benchmark(ctx.gpu, make_fg_options(ctx, target));
         ctx.book(fg.cycles);
         ctx.state.row(Element::kL2).fetch_granularity =
             fg.found ? Attribute::benchmarked(fg.granularity)
                      : Attribute::unavailable("no unimodal stride");
         ctx.state.of(Element::kL2).fg = fg.found ? fg.granularity : 32;
       }});

  plan.graph.add(
      {"L2.latency", Element::kL2, StageKind::kLatency, {"L2.fg"}, false,
       [target](StageContext& ctx) {
         const auto latency = run_latency_benchmark(
             ctx.gpu, make_latency_options(ctx, target,
                                           ctx.state.of(Element::kL2).fg,
                                           /*min_array_bytes=*/0,
                                           /*cache_bytes=*/0));
         ctx.book(latency.cycles);
         MemoryElementReport& row = ctx.state.row(Element::kL2);
         row.load_latency = Attribute::benchmarked(latency.headline);
         row.latency_stats = latency.summary;
       }});

  // Segment count: size benchmark + alignment to an integer fraction of the
  // API total (paper IV-F1); publishes the per-segment capacity for the
  // line-size stage.
  const std::uint64_t api_total = prop.l2_cache_size;
  plan.graph.add(
      {"L2.segment", Element::kL2, StageKind::kSize, {"L2.fg"}, false,
       [api_total](StageContext& ctx) {
         const auto segment = run_l2_segment_benchmark(
             ctx.gpu, api_total, ctx.state.of(Element::kL2).fg, {},
             ctx.options.sweep_threads, &ctx.chase_pool);
         ctx.book(segment.cycles);
         ctx.book_sweep(segment.widenings, segment.sweep_cycles);
         MemoryElementReport& row = ctx.state.row(Element::kL2);
         if (segment.found) {
           row.amount =
               Attribute::benchmarked(segment.segments, segment.confidence);
           row.amount_per_gpu = true;
           ctx.state.l2_segment_bytes = segment.segment_bytes;
         } else {
           row.amount = Attribute::unavailable("segment size not detected");
         }
       }});

  plan.graph.add(
      {"L2.line", Element::kL2, StageKind::kLineSize, {"L2.fg", "L2.segment"},
       false, [target](StageContext& ctx) {
         const auto line = run_line_size_benchmark(
             ctx.gpu, make_line_options(ctx, target,
                                        ctx.state.l2_segment_bytes,
                                        ctx.state.of(Element::kL2).fg));
         ctx.book(line.cycles);
         ctx.book_line_size(line.cycles);
         ctx.state.row(Element::kL2).cache_line = line_size_attribute(line);
       }});

  add_bandwidth_stage(plan.graph, "L2", Element::kL2, /*bytes=*/0);
}

}  // namespace

DiscoveryPlan nvidia_stages(sim::Gpu& gpu, const DiscoverOptions& options) {
  DiscoveryPlan plan;
  const runtime::DeviceProp prop = runtime::get_device_prop(gpu);
  const sim::GpuSpec& spec = gpu.spec();

  // --- First-level caches: L1, Texture, ReadOnly, Constant L1. -------------
  const Element first_level[] = {Element::kL1, Element::kTexture,
                                 Element::kReadOnly, Element::kConstL1};
  std::vector<std::string> sharing_deps;
  for (const Element element : first_level) {
    if (!spec.has(element)) continue;
    MemoryElementReport& row = add_row(plan, element);
    FirstLevelPlan level;
    level.vendor = sim::Vendor::kNvidia;
    level.element = element;
    level.prefix = short_name(element);
    level.size_lower = 1 * KiB;
    level.size_upper =
        element == Element::kConstL1 ? kConstantArrayLimit : 1024 * KiB;
    add_first_level_stages(plan.graph, level);
    sharing_deps.push_back(stage_name(level.prefix, StageKind::kSize));
    if (element == Element::kL1 && spec.l1_amount_unavailable) {
      row.amount =
          Attribute::unavailable("unable to schedule a thread on warp 3");
    } else {
      add_amount_stage(plan.graph, level);
    }
  }

  // --- Constant L1.5 (between Constant L1 and L2). -------------------------
  if (spec.has(Element::kConstL15)) {
    MemoryElementReport& row = add_row(plan, Element::kConstL15);
    // The 64 KiB constant limit blocks the amount benchmark (Table I: #).
    row.amount = Attribute::unavailable("64 KiB constant array limitation");
    add_const_l15_stages(plan, spec.has(Element::kConstL1));
  }

  // --- L2 cache. ------------------------------------------------------------
  if (spec.has(Element::kL2)) {
    MemoryElementReport& row = add_row(plan, Element::kL2);
    row.size = Attribute::from_api(static_cast<double>(prop.l2_cache_size));
    plan.state.l2_segment_bytes = prop.l2_cache_size;
    add_l2_stages(plan, prop);
  }

  // --- Shared Memory. --------------------------------------------------------
  if (spec.has(Element::kSharedMem)) {
    MemoryElementReport& row = add_row(plan, Element::kSharedMem);
    row.size =
        Attribute::from_api(static_cast<double>(prop.shared_mem_per_block));
    add_scratchpad_stage(plan.graph, "SHARED", Element::kSharedMem);
  }

  // --- Device memory. ---------------------------------------------------------
  if (spec.has(Element::kDeviceMem)) {
    MemoryElementReport& row = add_row(plan, Element::kDeviceMem);
    row.size = Attribute::from_api(static_cast<double>(prop.total_global_mem));
    add_device_latency_stage(plan.graph, sim::Vendor::kNvidia,
                             /*fetch_granularity=*/32);
    add_bandwidth_stage(plan.graph, "DMEM", Element::kDeviceMem, 1 * GiB);
  }

  // --- Physical sharing across logical spaces (paper IV-G). -----------------
  // Full runs only: the pairwise protocol needs every first-level size.
  if (sharing_deps.size() >= 2) {
    plan.graph.add(
        {"sharing.pairs", Element::kL1, StageKind::kSharing, sharing_deps,
         /*full_run_only=*/true, [first_level](StageContext& ctx) {
           SharingBenchOptions options;
           for (const Element element : first_level) {
             if (!ctx.gpu.spec().has(element)) continue;
             const ElementState state = ctx.state.get(element);
             if (state.size == 0) continue;
             options.entries.push_back(
                 {element, state.size, state.fg,
                  element == Element::kConstL1 ? kConstantArrayLimit : 0});
           }
           options.threads = ctx.options.sweep_threads;
           options.chase_pool = &ctx.chase_pool;
           if (options.entries.size() < 2) return;
           const auto sharing = run_sharing_benchmark(ctx.gpu, options);
           // Each tested pair is one benchmark execution.
           for (std::size_t i = 1; i < sharing.pairs.size(); ++i) ctx.book(0);
           ctx.book(sharing.cycles);
           ctx.book_sharing(sharing.cycles);
           for (const auto& entry : options.entries) {
             MemoryElementReport& row = ctx.state.row(entry.element);
             const auto group = sharing.group_of(entry.element);
             if (group.empty()) {
               row.shared_with = "no";
             } else {
               std::string joined = short_name(entry.element);
               for (const Element peer : group) {
                 joined += "," + short_name(peer);
               }
               row.shared_with = joined;
             }
           }
         }});
  }

  if (options.measure_compute) add_compute_stage(plan.graph);
  validate(plan.graph);
  return plan;
}

}  // namespace mt4g::core::pipeline
