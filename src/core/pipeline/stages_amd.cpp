// AMD stage table: the microbenchmark suite over the AMD CDNA memory
// elements (paper Table I, lower half) as declarative stages. AMD exposes
// much more through APIs — HSA for L2/L3 sizes and instance counts, KFD for
// their line sizes — so the table is shorter (paper Sec. V-A: ~15 vs ~35
// benchmarks on NVIDIA); the API-provenance attributes are seeded into the
// row skeletons at build time.
#include "common/units.hpp"
#include "core/benchmarks/bandwidth.hpp"
#include "core/benchmarks/sharing.hpp"
#include "core/pipeline/runner.hpp"
#include "core/pipeline/stages_common.hpp"
#include "runtime/device.hpp"

namespace mt4g::core::pipeline {
namespace {

using sim::Element;

MemoryElementReport& add_row(DiscoveryPlan& plan, Element element) {
  plan.state.element[element];
  plan.graph.row_order.push_back(element);
  MemoryElementReport& row = plan.state.rows[element];
  row.element = element;
  return row;
}

FirstLevelPlan amd_l1_plan(Element element, const std::string& prefix) {
  FirstLevelPlan plan;
  plan.vendor = sim::Vendor::kAmd;
  plan.element = element;
  plan.prefix = prefix;
  plan.size_lower = 512;
  plan.size_upper = 1024 * KiB;
  plan.fg_fallback = 64;
  plan.report_upper_bound = false;  // AMD reports a plain "no change point"
  return plan;
}

}  // namespace

DiscoveryPlan amd_stages(sim::Gpu& gpu, const DiscoverOptions& options) {
  DiscoveryPlan plan;
  const runtime::DeviceProp prop = runtime::get_device_prop(gpu);
  const sim::GpuSpec& spec = gpu.spec();
  const auto hsa = runtime::hsa_cache_info(gpu);
  const auto kfd = runtime::kfd_cache_info(gpu);

  // --- Vector L1. ------------------------------------------------------------
  if (spec.has(Element::kVL1)) {
    add_row(plan, Element::kVL1);
    const FirstLevelPlan level = amd_l1_plan(Element::kVL1, "VL1");
    add_first_level_stages(plan.graph, level);
    add_amount_stage(plan.graph, level);
  }

  // --- Scalar L1 data cache + CU-id sharing. ----------------------------------
  if (spec.has(Element::kSL1D)) {
    MemoryElementReport& row = add_row(plan, Element::kSL1D);
    row.amount = Attribute::not_applicable();
    add_first_level_stages(plan.graph, amd_l1_plan(Element::kSL1D, "SL1D"));
    if (spec.cu_sharing_unavailable) {
      // A stage (not a build-time write) so the verdict is pruned away with
      // the element: a --only vl1 report must not carry SL1D conclusions.
      plan.graph.add(
          {"SL1D.cu_sharing", Element::kSL1D, StageKind::kSharing, {}, false,
           [](StageContext& ctx) {
             ctx.state.cu_sharing.available = false;
             ctx.state.cu_sharing.unavailable_reason =
                 "virtualised GPU access prevents CU-pinned execution";
             ctx.state.row(Element::kSL1D).shared_with = "unavailable";
           }});
    } else {
      plan.graph.add(
          {"SL1D.cu_sharing", Element::kSL1D, StageKind::kSharing,
           {"SL1D.fg", "SL1D.size"}, false, [](StageContext& ctx) {
             const ElementState& state = ctx.state.of(Element::kSL1D);
             if (state.size == 0) return;
             CuSharingBenchOptions options;
             options.sl1d_bytes = state.size;
             options.stride = state.fg;
             options.threads = ctx.options.sweep_threads;
             options.chase_pool = &ctx.chase_pool;
             const auto sharing = run_cu_sharing_benchmark(ctx.gpu, options);
             ctx.book(sharing.cycles);
             ctx.book_sharing(sharing.cycles);
             ctx.state.cu_sharing.available = true;
             ctx.state.cu_sharing.peers = sharing.peers;
             ctx.state.row(Element::kSL1D).shared_with = "CU id";
           }});
    }
  }

  // --- L2: size/line/amount from HSA + KFD, the rest benchmarked. -------------
  if (spec.has(Element::kL2)) {
    const Target target = target_for(sim::Vendor::kAmd, Element::kL2);
    MemoryElementReport& row = add_row(plan, Element::kL2);
    row.size = Attribute::from_api(
        static_cast<double>(hsa ? hsa->l2_size : prop.l2_cache_size));
    if (kfd && kfd->l2_line != 0) {
      row.cache_line = Attribute::from_api(kfd->l2_line);
    }
    // One L2 per XCD (paper IV-F1): the amount comes from the API.
    row.amount = Attribute::from_api(hsa ? hsa->l2_instances : 1);
    row.amount_per_gpu = true;

    plan.graph.add(
        {"L2.fg", Element::kL2, StageKind::kFetchGranularity, {}, false,
         [target](StageContext& ctx) {
           const auto fg =
               run_fg_benchmark(ctx.gpu, make_fg_options(ctx, target));
           ctx.book(fg.cycles);
           ctx.state.row(Element::kL2).fetch_granularity =
               fg.found ? Attribute::benchmarked(fg.granularity)
                        : Attribute::unavailable("no unimodal stride");
           ctx.state.of(Element::kL2).fg = fg.found ? fg.granularity : 64;
         }});
    plan.graph.add(
        {"L2.latency", Element::kL2, StageKind::kLatency, {"L2.fg"}, false,
         [target](StageContext& ctx) {
           const auto latency = run_latency_benchmark(
               ctx.gpu, make_latency_options(ctx, target,
                                             ctx.state.of(Element::kL2).fg,
                                             /*min_array_bytes=*/0,
                                             /*cache_bytes=*/0));
           ctx.book(latency.cycles);
           MemoryElementReport& l2_row = ctx.state.row(Element::kL2);
           l2_row.load_latency = Attribute::benchmarked(latency.headline);
           l2_row.latency_stats = latency.summary;
         }});
    add_bandwidth_stage(plan.graph, "L2", Element::kL2, /*bytes=*/0);
  }

  // --- L3 (CDNA3 Infinity Cache): size/line/amount via API; load latency and
  // fetch granularity are open gaps (paper Sec. III-C), bandwidth works. ------
  if (spec.has(Element::kL3)) {
    MemoryElementReport& row = add_row(plan, Element::kL3);
    row.size = Attribute::from_api(static_cast<double>(hsa ? hsa->l3_size : 0));
    if (kfd && kfd->l3_line != 0) {
      row.cache_line = Attribute::from_api(kfd->l3_line);
    }
    row.amount = Attribute::from_api(hsa ? hsa->l3_instances : 1);
    row.amount_per_gpu = true;
    row.load_latency =
        Attribute::unavailable("CDNA3 L3 benchmarking not yet supported");
    row.fetch_granularity =
        Attribute::unavailable("CDNA3 L3 benchmarking not yet supported");
    add_bandwidth_stage(plan.graph, "L3", Element::kL3, /*bytes=*/0);
  }

  // --- LDS. --------------------------------------------------------------------
  if (spec.has(Element::kLds)) {
    MemoryElementReport& row = add_row(plan, Element::kLds);
    row.size =
        Attribute::from_api(static_cast<double>(prop.shared_mem_per_block));
    add_scratchpad_stage(plan.graph, "LDS", Element::kLds);
  }

  // --- Device memory. ------------------------------------------------------------
  if (spec.has(Element::kDeviceMem)) {
    MemoryElementReport& row = add_row(plan, Element::kDeviceMem);
    row.size = Attribute::from_api(static_cast<double>(prop.total_global_mem));
    // Step past the largest fill granularity in the chain (the CDNA3 L3
    // fills 128 B sectors on 256 B lines) so every cold load reaches DRAM.
    add_device_latency_stage(plan.graph, sim::Vendor::kAmd,
                             /*fetch_granularity=*/256);
    add_bandwidth_stage(plan.graph, "DMEM", Element::kDeviceMem, 1 * GiB);
  }

  if (options.measure_compute) add_compute_stage(plan.graph);
  validate(plan.graph);
  return plan;
}

}  // namespace mt4g::core::pipeline
