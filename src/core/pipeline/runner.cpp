#include "core/pipeline/runner.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <set>

#include "common/fault.hpp"
#include "exec/executor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mt4g::core::pipeline {
namespace {

/// Per-stage execution record: the chase pool (upstream-linked), the
/// bookings, and the stage outputs that merge in declaration order.
struct StageRecord {
  runtime::ReplicaPool pool;
  StageBooking booking;
  std::vector<SizeSeries> series;
  std::vector<ComputeThroughputReport> compute_throughput;
  double wall_seconds = 0.0;  ///< host wall time of run_stage on its worker
  bool executed = false;
};

struct GraphRun {
  sim::Gpu& gpu;
  const StageGraph& graph;
  GraphState& state;
  const DiscoverOptions& options;
  std::vector<StageRecord> records;
  std::vector<std::exception_ptr> errors;
  std::vector<bool> failed;  ///< threw, or transitively depends on a throw
  /// Forked Gpus recycled across stages (substrates + chase replicas):
  /// forking rebuilds every cache, so a fork-per-stage would dominate small
  /// discoveries on big-cache models.
  runtime::ReplicaCache replicas;

  explicit GraphRun(sim::Gpu& gpu_, const StageGraph& graph_,
                    GraphState& state_, const DiscoverOptions& options_)
      : gpu(gpu_), graph(graph_), state(state_), options(options_),
        records(graph_.stages.size()), errors(graph_.stages.size()),
        failed(graph_.stages.size(), false) {}

  /// Executes one stage on a reset substrate: a (recycled) fork of the
  /// owning Gpu, flushed, re-seeded with the owner's seed and rewound to
  /// the owner's allocator cursor — the state a fresh fork would have. Every
  /// stage therefore sees identical substrate state, so its measurements
  /// are a pure function of (owner seed, stage) — the scheduling-
  /// independence the byte-identity contract rests on.
  void run_stage(std::size_t i) {
    // Cooperative cancellation checkpoint: an expired per-job deadline
    // surfaces as a TimeoutError stage failure, which skips every dependent
    // stage and drains the remaining independent ones instantly (each hits
    // this same check), so a timed-out graph unwinds under any schedule.
    options.deadline.check("pipeline.stage");
    // Deterministic fault injection (disabled: one relaxed atomic load).
    if (fault::faults_enabled()) {
      fault::Injector::instance().at(fault::kSitePipelineStage,
                                     graph.stages[i].name);
    }
    // Wall time is always measured (two clock reads); the span and metric
    // sites are no-ops unless a trace/metrics run opted in. None of it feeds
    // back into the measurement — the byte-identity contract is untouched.
    const obs::SpanGuard span("stage:", graph.stages[i].name);
    const std::uint64_t start_ns = obs::monotonic_ns();
    sim::Gpu substrate = replicas.acquire(gpu);
    StageRecord& record = records[i];
    {
      const obs::SpanGuard reset_span("substrate.reset");
      const std::uint64_t reset_start = obs::monotonic_ns();
      substrate.flush_caches();
      substrate.reseed_noise(gpu.seed());
      substrate.reset_allocator(gpu.heap_top());
      record.pool.reset_ns += obs::monotonic_ns() - reset_start;
    }
    record.pool.replica_cache = &replicas;
    record.pool.warm_chunk_points = options.subsweep_chunking ? 8 : 0;
    StageContext ctx{substrate, options, state, record.pool};
    graph.stages[i].run(ctx);
    record.booking = ctx.booking;
    record.series = std::move(ctx.series);
    record.compute_throughput = std::move(ctx.compute_throughput);
    record.executed = true;
    // Recycle the substrate and the stage's chase replicas; the pool's memo
    // stays live as upstream for dependent stages.
    replicas.release(std::move(substrate));
    for (sim::Gpu& replica : record.pool.replicas) {
      replicas.release(std::move(replica));
    }
    record.pool.replicas.clear();
    const std::uint64_t wall_ns = obs::monotonic_ns() - start_ns;
    record.wall_seconds = static_cast<double>(wall_ns) * 1e-9;
    if (obs::metrics_enabled()) {
      obs::Metrics::instance().add("pipeline.stage_wall_ns",
                                   static_cast<double>(wall_ns));
    }
  }
};

void run_serial(GraphRun& run, const std::vector<std::vector<std::size_t>>& deps,
                const std::vector<std::size_t>& order) {
  for (const std::size_t i : order) {
    for (const std::size_t d : deps[i]) {
      if (run.failed[d]) run.failed[i] = true;
    }
    if (run.failed[i]) continue;
    try {
      run.run_stage(i);
    } catch (...) {
      run.errors[i] = std::current_exception();
      run.failed[i] = true;
    }
  }
}

/// Dependency-aware worker-pool scheduling: workers pull the ready stage
/// with the lowest declaration index. Waiting workers are parked on a
/// condition variable; stage completion wakes them. Progress is guaranteed
/// even on a pool-less executor (parallel_for then runs the first worker
/// loop inline on the caller, which drains the whole graph serially).
void run_concurrent(GraphRun& run,
                    const std::vector<std::vector<std::size_t>>& deps,
                    std::uint32_t bench_threads, exec::Executor& executor) {
  const std::size_t n = run.graph.stages.size();
  std::vector<std::size_t> remaining(n);
  std::vector<std::vector<std::size_t>> dependents(n);
  std::mutex mutex;
  std::condition_variable wake;
  std::set<std::size_t> ready;
  std::size_t unfinished = n;
  for (std::size_t i = 0; i < n; ++i) {
    remaining[i] = deps[i].size();
    for (const std::size_t d : deps[i]) dependents[d].push_back(i);
    if (remaining[i] == 0) ready.insert(i);
  }

  const auto worker = [&](std::size_t, std::uint32_t) {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      wake.wait(lock, [&] { return !ready.empty() || unfinished == 0; });
      if (ready.empty()) return;  // drained
      const std::size_t i = *ready.begin();
      ready.erase(ready.begin());
      bool ok = !run.failed[i];
      if (ok) {
        lock.unlock();
        try {
          run.run_stage(i);
        } catch (...) {
          run.errors[i] = std::current_exception();
          ok = false;
        }
        lock.lock();
        if (!ok) run.failed[i] = true;
      }
      for (const std::size_t dependent : dependents[i]) {
        if (!ok) run.failed[dependent] = true;
        if (--remaining[dependent] == 0) ready.insert(dependent);
      }
      --unfinished;
      wake.notify_all();
    }
  };

  const auto workers = static_cast<std::uint32_t>(
      std::min<std::size_t>(bench_threads, std::max<std::size_t>(n, 1)));
  executor.parallel_for(workers, workers, worker);
}

}  // namespace

void run_graph(sim::Gpu& gpu, DiscoveryPlan& plan,
               const DiscoverOptions& options, TopologyReport& report) {
  // prune() analyses the unpruned graph internally (validating it in the
  // process); one analyze() of the pruned graph covers everything below.
  prune(plan.graph, options.only);
  const StageGraph& graph = plan.graph;
  const std::size_t n = graph.stages.size();
  const auto [deps, order, ancestors] = analyze(graph);

  GraphRun run(gpu, graph, plan.state, options);
  // Upstream memo wiring: a stage's pool consults its transitive
  // dependencies' pools (declaration order), which are complete — and
  // therefore immutable — before the stage starts under every schedule.
  for (std::size_t i = 0; i < n; ++i) {
    run.records[i].pool.upstream.reserve(ancestors[i].size());
    for (const std::size_t a : ancestors[i]) {
      run.records[i].pool.upstream.push_back(&run.records[a].pool);
    }
  }

  if (options.bench_threads <= 1 || n <= 1) {
    run_serial(run, deps, order);
  } else {
    exec::Executor& executor = options.bench_executor
                                   ? *options.bench_executor
                                   : exec::shared_executor();
    run_concurrent(run, deps, options.bench_threads, executor);
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (run.errors[i]) std::rethrow_exception(run.errors[i]);
  }

  // --- Deterministic merge, everything in stage-declaration order. ---------
  report.stage_cycles.reserve(report.stage_cycles.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    const StageRecord& record = run.records[i];
    const StageBooking& booking = record.booking;
    report.benchmarks_executed += booking.benchmarks;
    report.simulated_seconds += booking.seconds;
    report.total_cycles += booking.cycles;
    report.sweep_widenings += booking.sweep_widenings;
    report.sweep_cycles += booking.sweep_cycles;
    report.line_size_cycles += booking.line_size_cycles;
    report.amount_cycles += booking.amount_cycles;
    report.sharing_cycles += booking.sharing_cycles;
    report.bandwidth_cycles += booking.bandwidth_cycles;
    report.compute_cycles += booking.compute_cycles;
    report.chase_memo_hits += record.pool.memo_stats.hits;
    report.chase_memo_misses += record.pool.memo_stats.misses;
    report.stage_cycles.push_back(
        {graph.stages[i].name, booking.cycles, record.wall_seconds,
         static_cast<double>(record.pool.reset_ns) * 1e-9});
    for (const SizeSeries& series : record.series) {
      report.series.push_back(series);
    }
    for (const ComputeThroughputReport& row : record.compute_throughput) {
      report.compute_throughput.push_back(row);
    }
  }

  // Critical path: the longest dependency chain, with each stage priced at
  // its serial depth — the chase work that cannot fan out across
  // --sweep-threads (per batch, the most expensive sub-sweep chunk or
  // singleton; see ReplicaPool::serial_cycles) plus any non-chase cycles
  // (bandwidth/compute kernels run whole). total_cycles /
  // critical_path_cycles therefore bounds the discovery-level speedup with
  // both bench-level (stage graph) and sweep-level (sub-sweep chunk)
  // parallelism engaged.
  std::vector<std::uint64_t> path(n, 0);
  std::uint64_t critical = 0;
  for (const std::size_t i : order) {
    std::uint64_t longest_dep = 0;
    for (const std::size_t d : deps[i]) {
      longest_dep = std::max(longest_dep, path[d]);
    }
    const StageRecord& record = run.records[i];
    const std::uint64_t chase = record.pool.chase_cycles;
    const std::uint64_t booked = record.booking.cycles;
    const std::uint64_t non_chase = booked > chase ? booked - chase : 0;
    path[i] = longest_dep + record.pool.serial_cycles + non_chase;
    critical = std::max(critical, path[i]);
  }
  report.critical_path_cycles += critical;

  // Rows surface in the builder's element order, restricted to the
  // selected elements; dependency-only elements (e.g. Const L1 under
  // --only const_l15) ran their stages but stay silent.
  for (const sim::Element element : graph.row_order) {
    if (!options.wants(element)) continue;
    const bool present = std::any_of(
        graph.stages.begin(), graph.stages.end(),
        [&](const Stage& stage) { return stage.element == element; });
    if (!present) continue;
    const auto row = plan.state.rows.find(element);
    if (row != plan.state.rows.end()) report.memory.push_back(row->second);
  }
  report.cu_sharing = plan.state.cu_sharing;
}

}  // namespace mt4g::core::pipeline
