// The declarative discovery stage graph (paper Sec. V-A, generalised).
//
// The paper's discovery procedure is a dependency-ordered suite of
// microbenchmarks per memory element: fetch granularity feeds the size
// benchmark's stride, the detected size feeds latency/line-size/amount, the
// sharing benchmarks consume every first-level size. Instead of hardcoding
// that walk imperatively, each benchmark invocation is a Stage *value* —
// element, kind, explicit data dependencies, and a run function — and the
// vendor collectors are tables of stages (nvidia_stages() / amd_stages(),
// see stages_nvidia.cpp / stages_amd.cpp) validated at registration time.
//
// A graph executor (runner.hpp) runs ready stages concurrently under
// DiscoverOptions::bench_threads. The determinism contract — the assembled
// TopologyReport is byte-identical for every bench_threads x sweep_threads
// combination — rests on three rules:
//   (1) every stage executes against its own substrate: a Gpu::fork of the
//       owning Gpu that keeps the owner's seed, so allocations, direct
//       chases and batched (seed, spec) noise streams are functions of the
//       stage alone, never of what ran before or beside it;
//   (2) a stage's chase memo consults only the pools of its completed
//       (transitive) dependency stages, which finished before it started
//       under every schedule (runtime::ReplicaPool::upstream);
//   (3) bookings — benchmark counts, cycle attribution, memo statistics,
//       series — accumulate per stage and merge into the report in stage
//       declaration order after the graph has drained.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace mt4g::core::pipeline {

struct StageContext;

/// What a stage measures; names the attribution bucket its cycles land in.
enum class StageKind : std::uint8_t {
  kFetchGranularity,  ///< stride sweep (paper IV-D)
  kSize,              ///< K-S size workflow (IV-B), incl. the L2 segment run
  kLatency,           ///< load latency (IV-C), incl. scratchpad latency
  kLineSize,          ///< cache line size (IV-E)
  kAmount,            ///< per-SM segment count (IV-F)
  kSharing,           ///< physical sharing (IV-G) / CU sharing (IV-H)
  kBandwidth,         ///< stream kernels (IV-I)
  kCompute,           ///< per-dtype FLOPS suite (Sec. VII extension)
};

std::string stage_kind_name(StageKind kind);

/// One benchmark invocation of the discovery suite, as pure data plus a run
/// function. Stages form a DAG via `deps` (names of other stages).
struct Stage {
  /// Unique name, conventionally "<element short name>.<kind>" (e.g.
  /// "L1.size"); dependency edges and diagnostics refer to it.
  std::string name;
  /// The element whose report row this stage feeds; pruning keys on it.
  sim::Element element = sim::Element::kL1;
  StageKind kind = StageKind::kFetchGranularity;
  /// Names of the stages whose outputs this stage reads (graph state writes
  /// happen-before every dependent stage; their chase memos are probed as
  /// upstream pools).
  std::vector<std::string> deps;
  /// Stages that only make sense for a full-suite run (NVIDIA physical
  /// sharing, the compute suite): dropped whenever DiscoverOptions::only
  /// restricts discovery, matching the pre-graph collectors.
  bool full_run_only = false;
  /// Executes the benchmark against the stage substrate and records results
  /// into the graph state + bookings (see StageContext).
  std::function<void(StageContext&)> run;
};

/// A validated table of stages plus the element order of the final report.
struct StageGraph {
  std::vector<Stage> stages;
  /// Elements in report-row emission order (the order the imperative
  /// collectors pushed rows in).
  std::vector<sim::Element> row_order;

  void add(Stage stage) { stages.push_back(std::move(stage)); }

  /// Index of a stage by name; npos when absent.
  std::size_t index_of(const std::string& name) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Registration-time validation: throws std::invalid_argument with a
/// diagnostic naming the offending stage(s) on duplicate names, unknown
/// dependencies, self-dependencies, missing run functions, or dependency
/// cycles.
void validate(const StageGraph& graph);

/// Everything the graph executor needs, derived in one pass (the individual
/// helpers below each re-walk the graph; run_graph uses this instead).
/// Construction validates like validate().
struct GraphAnalysis {
  std::vector<std::vector<std::size_t>> deps;  ///< direct dependency indices
  std::vector<std::size_t> order;              ///< deterministic topo order
  /// Transitive closure, sorted by declaration index (upstream probe order).
  std::vector<std::vector<std::size_t>> ancestors;
};
GraphAnalysis analyze(const StageGraph& graph);

/// Deterministic topological execution order: Kahn's algorithm, always
/// releasing the ready stage with the smallest declaration index first.
/// Requires validate() to have passed (throws on cycles like validate).
std::vector<std::size_t> topological_order(const StageGraph& graph);

/// Prunes the graph to the stages of the selected elements plus their
/// transitive dependencies (the generalised --only restriction, paper
/// Sec. V-A); full_run_only stages are dropped. Row emission is restricted
/// separately by the runner — dependency stages of unselected elements
/// still execute but do not surface a row. Empty set = no-op.
void prune(StageGraph& graph, const std::vector<sim::Element>& only);

/// Direct dependency indices per stage (same order as Stage::deps); throws
/// like validate() on unknown or self dependencies.
std::vector<std::vector<std::size_t>> dependency_indices(
    const StageGraph& graph);

/// Transitive dependency closure per stage, as index lists sorted by
/// declaration index (the upstream memo probe order). Requires a validated
/// graph.
std::vector<std::vector<std::size_t>> ancestor_sets(const StageGraph& graph);

}  // namespace mt4g::core::pipeline
