// Markdown report emitter (-p flag): the human-readable report.
#pragma once

#include <string>

#include "core/report.hpp"

namespace mt4g::core {

std::string to_markdown(const TopologyReport& report);

}  // namespace mt4g::core
