#include "core/output/report_io.hpp"

#include <cmath>
#include <stdexcept>

#include "common/json_parse.hpp"
#include "common/strings.hpp"

namespace mt4g::core {
namespace {

const json::Value& member(const json::Value& object, const std::string& key) {
  const json::Value* value = object.find(key);
  if (value == nullptr) {
    throw std::runtime_error("report json: missing member '" + key + "'");
  }
  return *value;
}

double number_or(const json::Value& object, const std::string& key,
                 double fallback) {
  const json::Value* value = object.find(key);
  if (value == nullptr || value->is_null()) return fallback;
  return value->as_double();
}

std::string string_or(const json::Value& object, const std::string& key,
                      const std::string& fallback) {
  const json::Value* value = object.find(key);
  if (value == nullptr || !value->is_string()) return fallback;
  return value->as_string();
}

Provenance parse_provenance(const std::string& symbol) {
  if (symbol == "!") return Provenance::kBenchmark;
  if (symbol == "!(API)") return Provenance::kApi;
  if (symbol == "#") return Provenance::kUnavailable;
  return Provenance::kNotApplicable;
}

Attribute parse_attribute(const json::Value& object) {
  Attribute attribute;
  attribute.provenance =
      parse_provenance(string_or(object, "provenance", "n/a"));
  if (attribute.available()) {
    attribute.value = number_or(object, "value", 0.0);
    attribute.confidence = number_or(object, "confidence", 1.0);
  }
  attribute.note = string_or(object, "note", "");
  return attribute;
}

stats::Summary parse_summary(const json::Value& object) {
  stats::Summary summary;
  summary.count = static_cast<std::size_t>(number_or(object, "count", 0));
  summary.mean = number_or(object, "mean", 0);
  summary.stddev = number_or(object, "stddev", 0);
  summary.min = number_or(object, "min", 0);
  summary.max = number_or(object, "max", 0);
  summary.p50 = number_or(object, "p50", 0);
  summary.p95 = number_or(object, "p95", 0);
  summary.p99 = number_or(object, "p99", 0);
  return summary;
}

}  // namespace

TopologyReport from_json_string(const std::string& text) {
  const json::Value root = json::parse_or_throw(text);
  if (!root.is_object()) {
    throw std::runtime_error("report json: document is not an object");
  }
  TopologyReport report;

  const json::Value& general = member(root, "general");
  report.general.gpu_name = string_or(general, "gpu", "");
  report.general.vendor = string_or(general, "vendor", "");
  report.general.model = string_or(general, "model", "");
  report.general.microarchitecture =
      string_or(general, "microarchitecture", "");
  report.general.compute_capability =
      string_or(general, "compute_capability", "");
  report.general.clock_mhz = number_or(general, "clock_mhz", 0);
  report.general.memory_clock_mhz = number_or(general, "memory_clock_mhz", 0);
  report.general.memory_bus_bits = static_cast<std::uint32_t>(
      number_or(general, "memory_bus_bits", 0));

  const json::Value& compute = member(root, "compute");
  auto u32 = [&compute](const char* key) {
    return static_cast<std::uint32_t>(number_or(compute, key, 0));
  };
  report.compute.num_sms = u32("num_sms");
  report.compute.cores_per_sm = u32("cores_per_sm");
  report.compute.num_cores_total = u32("num_cores_total");
  report.compute.warp_size = u32("warp_size");
  report.compute.warps_per_sm = u32("warps_per_sm");
  report.compute.max_threads_per_block = u32("max_threads_per_block");
  report.compute.max_threads_per_sm = u32("max_threads_per_sm");
  report.compute.max_blocks_per_sm = u32("max_blocks_per_sm");
  report.compute.regs_per_block = u32("regs_per_block");
  report.compute.regs_per_sm = u32("regs_per_sm");
  if (const json::Value* ids = compute.find("cu_physical_ids")) {
    for (const auto& id : ids->as_array()) {
      report.compute.cu_physical_ids.push_back(
          static_cast<std::uint32_t>(id.as_int()));
    }
  }

  for (const json::Value& row : member(root, "memory").as_array()) {
    MemoryElementReport element;
    element.element = sim::parse_element(string_or(row, "element", "L1"));
    element.size = parse_attribute(member(row, "size_bytes"));
    element.load_latency = parse_attribute(member(row, "load_latency_cycles"));
    element.read_bandwidth =
        parse_attribute(member(row, "read_bandwidth_bytes_per_s"));
    element.write_bandwidth =
        parse_attribute(member(row, "write_bandwidth_bytes_per_s"));
    element.cache_line = parse_attribute(member(row, "cache_line_bytes"));
    element.fetch_granularity =
        parse_attribute(member(row, "fetch_granularity_bytes"));
    element.amount = parse_attribute(member(row, "amount"));
    element.amount_per_gpu = string_or(row, "amount_scope", "") == "per_gpu";
    element.shared_with = string_or(row, "physically_shared_with", "");
    if (const json::Value* summary = row.find("latency_statistics")) {
      element.latency_stats = parse_summary(*summary);
    }
    report.memory.push_back(std::move(element));
  }

  if (const json::Value* sharing = root.find("sl1d_cu_sharing")) {
    report.cu_sharing.available =
        sharing->find("available") != nullptr &&
        sharing->find("available")->as_bool();
    report.cu_sharing.unavailable_reason = string_or(*sharing, "reason", "");
    if (const json::Value* groups = sharing->find("groups")) {
      for (const auto& entry : groups->as_array()) {
        const auto cu = static_cast<std::uint32_t>(
            member(entry, "cu").as_int());
        std::vector<std::uint32_t> peers;
        for (const auto& peer :
             member(entry, "shares_sl1d_with").as_array()) {
          peers.push_back(static_cast<std::uint32_t>(peer.as_int()));
        }
        report.cu_sharing.peers[cu] = std::move(peers);
      }
    }
  }

  if (const json::Value* throughput = root.find("compute_throughput")) {
    for (const auto& entry : throughput->as_array()) {
      ComputeThroughputReport row;
      row.dtype = string_or(entry, "dtype", "");
      row.achieved_ops_per_s = number_or(entry, "achieved_ops_per_s", 0);
      row.blocks = static_cast<std::uint32_t>(number_or(entry, "blocks", 0));
      row.threads_per_block =
          static_cast<std::uint32_t>(number_or(entry, "threads_per_block", 0));
      report.compute_throughput.push_back(std::move(row));
    }
  }

  const json::Value& meta = member(root, "meta");
  report.benchmarks_executed = static_cast<std::uint32_t>(
      number_or(meta, "benchmarks_executed", 0));
  report.simulated_seconds = number_or(meta, "simulated_seconds", 0);
  report.sweep_widenings =
      static_cast<std::uint32_t>(number_or(meta, "sweep_widenings", 0));
  report.sweep_cycles =
      static_cast<std::uint64_t>(number_or(meta, "sweep_cycles", 0));
  report.line_size_cycles =
      static_cast<std::uint64_t>(number_or(meta, "line_size_cycles", 0));
  report.amount_cycles =
      static_cast<std::uint64_t>(number_or(meta, "amount_cycles", 0));
  report.sharing_cycles =
      static_cast<std::uint64_t>(number_or(meta, "sharing_cycles", 0));
  report.bandwidth_cycles =
      static_cast<std::uint64_t>(number_or(meta, "bandwidth_cycles", 0));
  report.compute_cycles =
      static_cast<std::uint64_t>(number_or(meta, "compute_cycles", 0));
  report.total_cycles =
      static_cast<std::uint64_t>(number_or(meta, "total_cycles", 0));
  report.chase_memo_hits =
      static_cast<std::uint64_t>(number_or(meta, "chase_memo_hits", 0));
  report.chase_memo_misses =
      static_cast<std::uint64_t>(number_or(meta, "chase_memo_misses", 0));
  report.critical_path_cycles =
      static_cast<std::uint64_t>(number_or(meta, "critical_path_cycles", 0));
  if (const json::Value* stages = meta.find("stage_cycles")) {
    for (const auto& entry : stages->as_array()) {
      StageCycleReport stage;
      stage.stage = string_or(entry, "stage", "");
      stage.cycles =
          static_cast<std::uint64_t>(number_or(entry, "cycles", 0));
      stage.wall_seconds = number_or(entry, "wall_seconds", 0);
      stage.reset_seconds = number_or(entry, "reset_seconds", 0);
      report.stage_cycles.push_back(std::move(stage));
    }
  }
  if (const json::Value* wall = meta.find("wall")) {
    report.wall.enabled = true;
    report.wall.wall_seconds = number_or(*wall, "wall_seconds", 0);
    if (const json::Value* samples = wall->find("samples")) {
      for (const auto& entry : samples->as_array()) {
        WallMetricSample sample;
        sample.name = string_or(entry, "name", "");
        sample.kind = string_or(entry, "kind", "counter");
        sample.value = number_or(entry, "value", 0);
        sample.count = static_cast<std::uint64_t>(number_or(entry, "count", 0));
        report.wall.samples.push_back(std::move(sample));
      }
    }
  }
  return report;
}

namespace {

void diff_attribute(std::vector<ReportDifference>& out,
                    const std::string& element, const std::string& name,
                    const Attribute& lhs, const Attribute& rhs, bool discrete,
                    double tolerance) {
  if (lhs.provenance != rhs.provenance) {
    out.push_back({element, name + ".provenance",
                   provenance_symbol(lhs.provenance),
                   provenance_symbol(rhs.provenance)});
    return;
  }
  if (!lhs.available()) return;
  bool equal = false;
  if (discrete) {
    equal = static_cast<std::int64_t>(lhs.value) ==
            static_cast<std::int64_t>(rhs.value);
  } else {
    const double scale = std::max(std::fabs(lhs.value), std::fabs(rhs.value));
    equal = scale == 0.0 ||
            std::fabs(lhs.value - rhs.value) <= tolerance * scale;
  }
  if (!equal) {
    out.push_back({element, name, format_double(lhs.value, 2),
                   format_double(rhs.value, 2)});
  }
}

}  // namespace

std::vector<ReportDifference> diff_reports(const TopologyReport& lhs,
                                           const TopologyReport& rhs,
                                           const DiffOptions& options) {
  std::vector<ReportDifference> out;
  if (lhs.general.gpu_name != rhs.general.gpu_name) {
    out.push_back({"general", "gpu", lhs.general.gpu_name,
                   rhs.general.gpu_name});
  }
  if (lhs.general.vendor != rhs.general.vendor) {
    out.push_back({"general", "vendor", lhs.general.vendor,
                   rhs.general.vendor});
  }
  if (lhs.compute.num_sms != rhs.compute.num_sms) {
    out.push_back({"compute", "num_sms", std::to_string(lhs.compute.num_sms),
                   std::to_string(rhs.compute.num_sms)});
  }
  if (lhs.compute.warp_size != rhs.compute.warp_size) {
    out.push_back({"compute", "warp_size",
                   std::to_string(lhs.compute.warp_size),
                   std::to_string(rhs.compute.warp_size)});
  }

  for (const auto& row : lhs.memory) {
    const std::string name = sim::element_name(row.element);
    const MemoryElementReport* other = rhs.find(row.element);
    if (other == nullptr) {
      out.push_back({name, "presence", "present", "missing"});
      continue;
    }
    const double tol = options.continuous_tolerance;
    diff_attribute(out, name, "size", row.size, other->size,
                   /*discrete=*/true, tol);
    diff_attribute(out, name, "load_latency", row.load_latency,
                   other->load_latency, false, tol);
    diff_attribute(out, name, "read_bandwidth", row.read_bandwidth,
                   other->read_bandwidth, false, tol);
    diff_attribute(out, name, "write_bandwidth", row.write_bandwidth,
                   other->write_bandwidth, false, tol);
    diff_attribute(out, name, "cache_line", row.cache_line, other->cache_line,
                   true, tol);
    diff_attribute(out, name, "fetch_granularity", row.fetch_granularity,
                   other->fetch_granularity, true, tol);
    diff_attribute(out, name, "amount", row.amount, other->amount, true, tol);
    if (row.shared_with != other->shared_with) {
      out.push_back({name, "shared_with", row.shared_with,
                     other->shared_with});
    }
  }
  for (const auto& row : rhs.memory) {
    if (lhs.find(row.element) == nullptr) {
      out.push_back({sim::element_name(row.element), "presence", "missing",
                     "present"});
    }
  }
  return out;
}

}  // namespace mt4g::core
