// CSV report emitter — the original MT4G output format, still consumed by
// GPUscout-GUI (paper Sec. VI-B footnote 19).
#pragma once

#include <string>

#include "core/report.hpp"

namespace mt4g::core {

/// One row per memory element; attribute columns carry the value or the
/// provenance symbol ("#", "n/a") when unavailable.
std::string to_csv(const TopologyReport& report);

/// Size-benchmark series dump (-g flag): element, array size, reduced value.
std::string series_to_csv(const TopologyReport& report);

}  // namespace mt4g::core
