// JSON report emitter — MT4G's primary machine-readable output format.
#pragma once

#include <string>

#include "common/json.hpp"
#include "core/report.hpp"

namespace mt4g::core {

/// Builds the full JSON document for a report.
json::Value to_json(const TopologyReport& report);

/// Serialised document (2-space indentation).
std::string to_json_string(const TopologyReport& report);

}  // namespace mt4g::core
