#include "core/output/markdown_output.hpp"

#include "common/strings.hpp"
#include "common/units.hpp"

namespace mt4g::core {
namespace {

std::string size_cell(const Attribute& attribute) {
  if (!attribute.available()) {
    return attribute.note.empty() ? provenance_symbol(attribute.provenance)
                                  : attribute.note;
  }
  std::string cell = format_bytes(static_cast<std::uint64_t>(attribute.value));
  if (!attribute.note.empty()) cell = attribute.note;
  if (attribute.provenance == Provenance::kApi) cell += " (API)";
  return cell;
}

std::string latency_cell(const Attribute& attribute) {
  if (!attribute.available()) {
    return provenance_symbol(attribute.provenance);
  }
  return format_double(attribute.value, 0);
}

std::string bandwidth_cell(const Attribute& read, const Attribute& write) {
  if (!read.available() && !write.available()) return "n/a";
  return format_double(read.value / static_cast<double>(TiB), 2) + "/" +
         format_double(write.value / static_cast<double>(TiB), 2) + " TiB/s";
}

std::string small_size_cell(const Attribute& attribute) {
  if (!attribute.available()) {
    return provenance_symbol(attribute.provenance);
  }
  std::string cell =
      std::to_string(static_cast<std::int64_t>(attribute.value)) + "B";
  if (attribute.provenance == Provenance::kApi) cell += " (API)";
  return cell;
}

std::string amount_cell(const MemoryElementReport& row) {
  if (!row.amount.available()) {
    return provenance_symbol(row.amount.provenance);
  }
  return std::to_string(static_cast<std::int64_t>(row.amount.value)) +
         (row.amount_per_gpu ? " per GPU" : " per SM/CU");
}

}  // namespace

std::string to_markdown(const TopologyReport& report) {
  std::string out;
  out += "# MT4G Topology Report — " + report.general.gpu_name + "\n\n";
  out += "## General Information\n\n";
  out += "- Vendor: " + report.general.vendor + "\n";
  out += "- Model: " + report.general.model + "\n";
  out += "- Microarchitecture: " + report.general.microarchitecture + "\n";
  out += "- Compute capability: " + report.general.compute_capability + "\n";
  out += "- Clock: " + format_frequency(report.general.clock_mhz * 1e6) + "\n";
  out += "- Memory clock: " +
         format_frequency(report.general.memory_clock_mhz * 1e6) + "\n\n";

  out += "## Compute Resources\n\n";
  out += "- SMs/CUs: " + std::to_string(report.compute.num_sms) + "\n";
  out += "- Cores per SM/CU: " + std::to_string(report.compute.cores_per_sm) +
         " (total " + std::to_string(report.compute.num_cores_total) + ")\n";
  out += "- Warp size: " + std::to_string(report.compute.warp_size) + "\n";
  out += "- Warps per SM/CU: " + std::to_string(report.compute.warps_per_sm) + "\n";
  out += "- Max threads per block / SM: " +
         std::to_string(report.compute.max_threads_per_block) + " / " +
         std::to_string(report.compute.max_threads_per_sm) + "\n";
  out += "- Max blocks per SM: " +
         std::to_string(report.compute.max_blocks_per_sm) + "\n";
  out += "- Registers per block / SM: " +
         std::to_string(report.compute.regs_per_block) + " / " +
         std::to_string(report.compute.regs_per_sm) + "\n\n";

  out += "## Memory Resources\n\n";
  out +=
      "| Element | Size | Load Latency | R/W Bandwidth | Cache Line | Fetch "
      "Granularity | Amount | Shared With |\n";
  out += "|---|---|---|---|---|---|---|---|\n";
  for (const auto& row : report.memory) {
    out += "| " + sim::element_name(row.element) + " | " +
           size_cell(row.size) + " | " + latency_cell(row.load_latency) +
           " | " + bandwidth_cell(row.read_bandwidth, row.write_bandwidth) +
           " | " + small_size_cell(row.cache_line) + " | " +
           small_size_cell(row.fetch_granularity) + " | " + amount_cell(row) +
           " | " + (row.shared_with.empty() ? "n/a" : row.shared_with) +
           " |\n";
  }
  out += "\n";

  if (report.general.vendor == "AMD" && report.cu_sharing.available) {
    out += "## sL1d CU Sharing\n\n";
    for (const auto& [cu, peers] : report.cu_sharing.peers) {
      std::vector<std::string> names;
      for (std::uint32_t peer : peers) names.push_back(std::to_string(peer));
      out += "- CU " + std::to_string(cu) + ": shares sL1d with {" +
             join(names, ", ") + "}\n";
    }
    out += "\n";
  }

  if (!report.compute_throughput.empty()) {
    out += "## Compute Throughput\n\n";
    out += "| Datatype | Achieved | Launch |\n|---|---|---|\n";
    for (const auto& entry : report.compute_throughput) {
      out += "| " + entry.dtype + " | " +
             format_double(entry.achieved_ops_per_s / 1e12, 2) + " Tops/s | " +
             std::to_string(entry.blocks) + " x " +
             std::to_string(entry.threads_per_block) + " |\n";
    }
    out += "\n";
  }

  out += "## Run Statistics\n\n";
  out += "- Benchmarks executed: " +
         std::to_string(report.benchmarks_executed) + "\n";
  out += "- Simulated GPU time: " +
         format_double(report.simulated_seconds, 2) + " s\n";
  return out;
}

}  // namespace mt4g::core
