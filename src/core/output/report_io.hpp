// Report round-trip and comparison.
//
// from_json() rebuilds a TopologyReport from the JSON emitted by to_json(),
// enabling the artifact workflow of comparing stored reports against fresh
// runs. diff_reports() produces the per-attribute comparison the paper's
// Sec. V performs manually: discrete attributes must be identical, continuous
// ones are compared with a relative tolerance.
#pragma once

#include <string>
#include <vector>

#include "core/report.hpp"

namespace mt4g::core {

/// Rebuilds a report from to_json()/to_json_string() output.
/// Throws std::runtime_error on malformed or non-report JSON.
TopologyReport from_json_string(const std::string& text);

/// One attribute-level difference between two reports.
struct ReportDifference {
  std::string element;    ///< "L1", "L2", ... or "general"/"compute"
  std::string attribute;  ///< "size", "load_latency", ...
  std::string lhs;        ///< rendered value of the first report
  std::string rhs;        ///< rendered value of the second report
};

struct DiffOptions {
  /// Relative tolerance for continuous attributes (latency, bandwidth).
  double continuous_tolerance = 0.05;
};

/// Compares two reports: general info, compute info, and every memory
/// element's attributes. Returns the list of differences (empty = match).
std::vector<ReportDifference> diff_reports(const TopologyReport& lhs,
                                           const TopologyReport& rhs,
                                           const DiffOptions& options = {});

}  // namespace mt4g::core
