#include "core/output/csv_output.hpp"

#include "common/csv.hpp"
#include "common/strings.hpp"

namespace mt4g::core {
namespace {

std::string attribute_cell(const Attribute& attribute, bool integral) {
  if (!attribute.available()) return provenance_symbol(attribute.provenance);
  std::string value = integral
                          ? std::to_string(static_cast<std::int64_t>(
                                attribute.value))
                          : format_double(attribute.value, 2);
  if (!attribute.note.empty()) value += " (" + attribute.note + ")";
  return value;
}

}  // namespace

std::string to_csv(const TopologyReport& report) {
  csv::Writer writer({"element", "size_bytes", "load_latency_cycles",
                      "read_bw_bytes_per_s", "write_bw_bytes_per_s",
                      "cache_line_bytes", "fetch_granularity_bytes", "amount",
                      "amount_scope", "shared_with", "confidence_size"});
  for (const auto& row : report.memory) {
    writer.add_row({
        sim::element_name(row.element),
        attribute_cell(row.size, true),
        attribute_cell(row.load_latency, false),
        attribute_cell(row.read_bandwidth, false),
        attribute_cell(row.write_bandwidth, false),
        attribute_cell(row.cache_line, true),
        attribute_cell(row.fetch_granularity, true),
        attribute_cell(row.amount, true),
        row.amount_per_gpu ? "per_gpu" : "per_sm",
        row.shared_with.empty() ? "n/a" : row.shared_with,
        format_double(row.size.confidence, 4),
    });
  }
  return writer.str();
}

std::string series_to_csv(const TopologyReport& report) {
  csv::Writer writer({"element", "array_bytes", "reduced_value",
                      "change_point_bytes"});
  for (const auto& series : report.series) {
    for (std::size_t i = 0; i < series.array_sizes.size(); ++i) {
      writer.add_row({
          sim::element_name(series.element),
          std::to_string(series.array_sizes[i]),
          format_double(series.reduced_values[i], 4),
          std::to_string(series.change_point_bytes),
      });
    }
  }
  return writer.str();
}

}  // namespace mt4g::core
