#include "core/output/json_output.hpp"

namespace mt4g::core {
namespace {

json::Value attribute_to_json(const Attribute& attribute, bool integral) {
  json::Object object;
  object.emplace_back("provenance", provenance_symbol(attribute.provenance));
  if (attribute.available()) {
    if (integral) {
      object.emplace_back("value",
                          static_cast<std::int64_t>(attribute.value));
    } else {
      object.emplace_back("value", attribute.value);
    }
    object.emplace_back("confidence", attribute.confidence);
  }
  if (!attribute.note.empty()) object.emplace_back("note", attribute.note);
  return json::Value(std::move(object));
}

json::Value summary_to_json(const stats::Summary& summary) {
  json::Object object;
  object.emplace_back("count", static_cast<std::int64_t>(summary.count));
  object.emplace_back("mean", summary.mean);
  object.emplace_back("stddev", summary.stddev);
  object.emplace_back("min", summary.min);
  object.emplace_back("max", summary.max);
  object.emplace_back("p50", summary.p50);
  object.emplace_back("p95", summary.p95);
  object.emplace_back("p99", summary.p99);
  return json::Value(std::move(object));
}

}  // namespace

json::Value to_json(const TopologyReport& report) {
  json::Object root;

  json::Object general;
  general.emplace_back("gpu", report.general.gpu_name);
  general.emplace_back("vendor", report.general.vendor);
  general.emplace_back("model", report.general.model);
  general.emplace_back("microarchitecture",
                       report.general.microarchitecture);
  general.emplace_back("compute_capability",
                       report.general.compute_capability);
  general.emplace_back("clock_mhz", report.general.clock_mhz);
  general.emplace_back("memory_clock_mhz", report.general.memory_clock_mhz);
  general.emplace_back("memory_bus_bits",
                       static_cast<std::int64_t>(report.general.memory_bus_bits));
  root.emplace_back("general", json::Value(std::move(general)));

  json::Object compute;
  compute.emplace_back("num_sms", static_cast<std::int64_t>(report.compute.num_sms));
  compute.emplace_back("cores_per_sm",
                       static_cast<std::int64_t>(report.compute.cores_per_sm));
  compute.emplace_back("num_cores_total",
                       static_cast<std::int64_t>(report.compute.num_cores_total));
  compute.emplace_back("warp_size",
                       static_cast<std::int64_t>(report.compute.warp_size));
  compute.emplace_back("warps_per_sm",
                       static_cast<std::int64_t>(report.compute.warps_per_sm));
  compute.emplace_back("max_threads_per_block",
                       static_cast<std::int64_t>(report.compute.max_threads_per_block));
  compute.emplace_back("max_threads_per_sm",
                       static_cast<std::int64_t>(report.compute.max_threads_per_sm));
  compute.emplace_back("max_blocks_per_sm",
                       static_cast<std::int64_t>(report.compute.max_blocks_per_sm));
  compute.emplace_back("regs_per_block",
                       static_cast<std::int64_t>(report.compute.regs_per_block));
  compute.emplace_back("regs_per_sm",
                       static_cast<std::int64_t>(report.compute.regs_per_sm));
  if (!report.compute.cu_physical_ids.empty()) {
    json::Array ids;
    for (std::uint32_t id : report.compute.cu_physical_ids) {
      ids.emplace_back(static_cast<std::int64_t>(id));
    }
    compute.emplace_back("cu_physical_ids", json::Value(std::move(ids)));
  }
  root.emplace_back("compute", json::Value(std::move(compute)));

  json::Array memory;
  for (const auto& row : report.memory) {
    json::Object element;
    element.emplace_back("element", sim::element_name(row.element));
    element.emplace_back("size_bytes", attribute_to_json(row.size, true));
    element.emplace_back("load_latency_cycles",
                         attribute_to_json(row.load_latency, false));
    element.emplace_back("read_bandwidth_bytes_per_s",
                         attribute_to_json(row.read_bandwidth, false));
    element.emplace_back("write_bandwidth_bytes_per_s",
                         attribute_to_json(row.write_bandwidth, false));
    element.emplace_back("cache_line_bytes",
                         attribute_to_json(row.cache_line, true));
    element.emplace_back("fetch_granularity_bytes",
                         attribute_to_json(row.fetch_granularity, true));
    element.emplace_back("amount", attribute_to_json(row.amount, true));
    element.emplace_back("amount_scope",
                         row.amount_per_gpu ? "per_gpu" : "per_sm");
    if (!row.shared_with.empty()) {
      element.emplace_back("physically_shared_with", row.shared_with);
    }
    if (row.latency_stats.count > 0) {
      element.emplace_back("latency_statistics",
                           summary_to_json(row.latency_stats));
    }
    memory.emplace_back(std::move(element));
  }
  root.emplace_back("memory", json::Value(std::move(memory)));

  if (report.general.vendor == "AMD") {
    json::Object sharing;
    sharing.emplace_back("available", report.cu_sharing.available);
    if (!report.cu_sharing.unavailable_reason.empty()) {
      sharing.emplace_back("reason", report.cu_sharing.unavailable_reason);
    }
    json::Array groups;
    for (const auto& [cu, peers] : report.cu_sharing.peers) {
      json::Object entry;
      entry.emplace_back("cu", static_cast<std::int64_t>(cu));
      json::Array peer_ids;
      for (std::uint32_t peer : peers) {
        peer_ids.emplace_back(static_cast<std::int64_t>(peer));
      }
      entry.emplace_back("shares_sl1d_with", json::Value(std::move(peer_ids)));
      groups.emplace_back(std::move(entry));
    }
    sharing.emplace_back("groups", json::Value(std::move(groups)));
    root.emplace_back("sl1d_cu_sharing", json::Value(std::move(sharing)));
  }

  if (!report.compute_throughput.empty()) {
    json::Array throughput;
    for (const auto& entry : report.compute_throughput) {
      json::Object row;
      row.emplace_back("dtype", entry.dtype);
      row.emplace_back("achieved_ops_per_s", entry.achieved_ops_per_s);
      row.emplace_back("blocks", static_cast<std::int64_t>(entry.blocks));
      row.emplace_back("threads_per_block",
                       static_cast<std::int64_t>(entry.threads_per_block));
      throughput.emplace_back(std::move(row));
    }
    root.emplace_back("compute_throughput", json::Value(std::move(throughput)));
  }

  json::Object meta;
  meta.emplace_back("benchmarks_executed",
                    static_cast<std::int64_t>(report.benchmarks_executed));
  meta.emplace_back("simulated_seconds", report.simulated_seconds);
  meta.emplace_back("sweep_widenings",
                    static_cast<std::int64_t>(report.sweep_widenings));
  meta.emplace_back("sweep_cycles",
                    static_cast<std::int64_t>(report.sweep_cycles));
  meta.emplace_back("line_size_cycles",
                    static_cast<std::int64_t>(report.line_size_cycles));
  meta.emplace_back("amount_cycles",
                    static_cast<std::int64_t>(report.amount_cycles));
  meta.emplace_back("sharing_cycles",
                    static_cast<std::int64_t>(report.sharing_cycles));
  meta.emplace_back("bandwidth_cycles",
                    static_cast<std::int64_t>(report.bandwidth_cycles));
  meta.emplace_back("compute_cycles",
                    static_cast<std::int64_t>(report.compute_cycles));
  meta.emplace_back("total_cycles",
                    static_cast<std::int64_t>(report.total_cycles));
  meta.emplace_back("chase_memo_hits",
                    static_cast<std::int64_t>(report.chase_memo_hits));
  meta.emplace_back("chase_memo_misses",
                    static_cast<std::int64_t>(report.chase_memo_misses));
  meta.emplace_back("critical_path_cycles",
                    static_cast<std::int64_t>(report.critical_path_cycles));
  if (!report.stage_cycles.empty()) {
    json::Array stages;
    for (const auto& stage : report.stage_cycles) {
      json::Object entry;
      entry.emplace_back("stage", stage.stage);
      entry.emplace_back("cycles", static_cast<std::int64_t>(stage.cycles));
      // Wall time is per-run data: emitted only for opt-in observability
      // runs so default reports stay byte-identical (see WallMetricsReport).
      if (report.wall.enabled) {
        entry.emplace_back("wall_seconds", stage.wall_seconds);
        entry.emplace_back("reset_seconds", stage.reset_seconds);
      }
      stages.emplace_back(std::move(entry));
    }
    meta.emplace_back("stage_cycles", json::Value(std::move(stages)));
  }
  if (report.wall.enabled) {
    json::Object wall;
    wall.emplace_back("wall_seconds", report.wall.wall_seconds);
    json::Array samples;
    for (const auto& sample : report.wall.samples) {
      json::Object entry;
      entry.emplace_back("name", sample.name);
      entry.emplace_back("kind", sample.kind);
      entry.emplace_back("value", sample.value);
      if (sample.count > 0) {
        entry.emplace_back("count", static_cast<std::int64_t>(sample.count));
      }
      samples.emplace_back(std::move(entry));
    }
    wall.emplace_back("samples", json::Value(std::move(samples)));
    meta.emplace_back("wall", json::Value(std::move(wall)));
  }
  root.emplace_back("meta", json::Value(std::move(meta)));
  return json::Value(std::move(root));
}

std::string to_json_string(const TopologyReport& report) {
  return to_json(report).dump();
}

}  // namespace mt4g::core
