// Top-level discovery entry point: runs the benchmark suite — organised as a
// declarative stage graph (core/pipeline/) — against one simulated GPU and
// assembles the unified TopologyReport (paper Sec. III-IV).
#pragma once

#include <cstdint>
#include <vector>

#include "core/cancel.hpp"
#include "core/report.hpp"
#include "sim/gpu.hpp"

namespace mt4g::exec {
class Executor;
}

namespace mt4g::core {

struct DiscoverOptions {
  /// Restrict discovery to a set of memory elements (the CLI's --only flag,
  /// paper Sec. V-A: an L1-only run cuts an A100 analysis from 12 to 1 min).
  /// The stage graph is pruned to the selected elements plus their
  /// transitive dependencies (e.g. --only const_l15 still runs the Const L1
  /// probes its benchmarks feed on, but only reports the CL1.5 row). Empty =
  /// full discovery; full-run-only stages (NVIDIA physical sharing, the
  /// compute suite) execute only when empty.
  std::vector<sim::Element> only;
  /// Collect the reduction-value series of every size benchmark (Fig. 2).
  bool collect_series = false;
  /// Also run the per-datatype compute-capability benchmarks (FLOPS for
  /// INT/FP precisions and tensor engines — the paper's Sec. VII extension).
  bool measure_compute = false;
  /// Latencies recorded per p-chase run.
  std::uint32_t record_count = 512;
  /// Parallelism of the batched chase plans (caller included) inside one
  /// benchmark — the size sweeps and the fg/line-size/amount/sharing
  /// batches — fanned over the shared executor (src/exec/); 1 = the serial
  /// reference engine.
  std::uint32_t sweep_threads = 1;
  /// Parallelism across benchmarks (caller included): how many ready stages
  /// of the discovery stage graph run concurrently; 1 = serial declaration
  /// order. Independent elements (L1 vs texture vs scratchpad vs L2) stop
  /// waiting on each other at values > 1.
  ///
  /// Like sweep_threads, this is purely an execution knob: the report is
  /// byte-identical for every bench_threads x sweep_threads combination —
  /// stages run on forked substrates with per-(seed, spec) noise streams,
  /// chase memos consult only dependency stages, and bookings merge in
  /// stage-declaration order — so neither knob is part of
  /// fleet::DiscoveryJob::key().
  std::uint32_t bench_threads = 1;
  /// Split warm chains (size sweeps, line grids) into independently warmed
  /// sub-sweep chunks that fan out across sweep_threads (see
  /// runtime::ReplicaPool::warm_chunk_points). Purely an execution knob like
  /// the thread counts: reports are byte-identical with chunking on or off,
  /// so it is not part of fleet::DiscoveryJob::key(). Off means each warm
  /// chain runs as one serial unit.
  bool subsweep_chunking = true;
  /// Executor for bench_threads > 1; nullptr = exec::shared_executor().
  /// Tests inject a dedicated pool to force real stage interleaving
  /// regardless of the host's core count.
  exec::Executor* bench_executor = nullptr;
  /// Cooperative wall-clock budget, checked before every stage of the graph
  /// (see core/cancel.hpp); expiry raises TimeoutError out of discover().
  /// Default-constructed = unlimited. Purely an execution knob like the
  /// thread counts: a completed discovery's report does not depend on it,
  /// so it is not part of fleet::DiscoveryJob::key().
  Deadline deadline;

  /// True when discovery is restricted to a subset of elements.
  bool restricted() const { return !only.empty(); }
  /// True when @p element should surface a report row.
  bool wants(sim::Element element) const;
};

/// Runs general/compute/memory discovery and returns the full report.
TopologyReport discover(sim::Gpu& gpu, const DiscoverOptions& options = {});

}  // namespace mt4g::core
