// Top-level discovery entry point: runs the full benchmark suite against one
// simulated GPU and assembles the unified TopologyReport (paper Sec. III-IV).
#pragma once

#include <optional>

#include "core/report.hpp"
#include "sim/gpu.hpp"

namespace mt4g::core {

struct DiscoverOptions {
  /// Restrict discovery to one memory element (the CLI's --only flag,
  /// paper Sec. V-A: an L1-only run cuts an A100 analysis from 12 to 1 min).
  std::optional<sim::Element> only;
  /// Collect the reduction-value series of every size benchmark (Fig. 2).
  bool collect_series = false;
  /// Also run the per-datatype compute-capability benchmarks (FLOPS for
  /// INT/FP precisions and tensor engines — the paper's Sec. VII extension).
  bool measure_compute = false;
  /// Latencies recorded per p-chase run.
  std::uint32_t record_count = 512;
  /// Parallelism of the batched chase plans (caller included) — the size
  /// sweeps and the line-size/amount/sharing benchmarks — fanned over the
  /// shared executor (src/exec/); 1 = the serial reference engine. The
  /// report is byte-identical for every value — batched chases run on reset
  /// Gpu replicas with per-spec noise streams — so this is purely an
  /// execution knob and deliberately not part of fleet::DiscoveryJob::key().
  std::uint32_t sweep_threads = 1;
};

/// Runs general/compute/memory discovery and returns the full report.
TopologyReport discover(sim::Gpu& gpu, const DiscoverOptions& options = {});

}  // namespace mt4g::core
