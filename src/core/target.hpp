// Mapping between memory elements and the load instructions that reach them.
//
// On real hardware, MT4G targets each element with a specific instruction:
// ld.global.ca / tex1Dfetch / __ldg / ld.const / s_load_dword /
// flat_load_dword with or without the GLC bit (paper IV-B2, IV-C). In the
// substrate the equivalent selector is (Space, AccessFlags); this header owns
// that mapping plus the hierarchy depth ordering used to classify whether a
// load was served "within" the benchmarked element.
#pragma once

#include <cstdint>

#include "runtime/kernels.hpp"
#include "sim/types.hpp"

namespace mt4g::core {

/// Instruction-level selector for one memory element.
struct Target {
  sim::Space space = sim::Space::kGlobal;
  sim::AccessFlags flags{};
  sim::Element element = sim::Element::kL1;
};

/// The selector MT4G uses to reach @p element on @p vendor. Throws for
/// elements with no load path (e.g. Texture cache on AMD).
Target target_for(sim::Vendor vendor, sim::Element element);

/// Depth rank in the memory hierarchy: 0 for first-level caches and
/// scratchpads, 1 for Const L1.5, 2 for L2, 3 for L3, 4 for device memory.
int depth_rank(sim::Element element);

/// True when a load served by @p served still counts as a hit for a
/// benchmark targeting @p tracked (i.e. it did not fall through deeper).
bool served_within(sim::Element tracked, sim::Element served);

/// Fraction of timed loads of @p result served within @p tracked.
double hit_fraction(const runtime::PChaseResult& result, sim::Element tracked);

}  // namespace mt4g::core
