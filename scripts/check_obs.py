#!/usr/bin/env python3
"""Schema checks for the observability artifacts (CI determinism job).

Usage:
    check_obs.py trace FILE [--expect-discovery N]
    check_obs.py metrics FILE [--require NAME ...]

`trace` validates a Chrome trace-event JSON written by `mt4g --trace`:
well-formed JSON, the traceEvents shape ("X" complete events with
name/cat/ph/ts/dur/pid/tid), proper span nesting within each thread, and —
when stage and discovery spans are present — that per-stage spans sum to
within 5% of the enclosing discovery spans' total wall time (computed over
the whole file, so large models dominate rather than per-model jitter).

`metrics` validates a Prometheus text file written by `--metrics`: every
non-comment line is `mt4g_<sanitised_name> <number>`, and each --require
name is present.
"""

import argparse
import json
import re
import sys


def fail(message):
    print(f"check_obs: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path, expect_discovery):
    with open(path, encoding="utf-8") as handle:
        try:
            trace = json.load(handle)
        except json.JSONDecodeError as error:
            fail(f"{path}: invalid JSON: {error}")

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")

    required = {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
    for i, event in enumerate(events):
        missing = required - event.keys()
        if missing:
            fail(f"{path}: event {i} missing keys {sorted(missing)}")
        if event["ph"] != "X":
            fail(f"{path}: event {i} has ph={event['ph']!r}, expected 'X'")
        if event["ts"] < 0 or event["dur"] < 0:
            fail(f"{path}: event {i} has negative ts/dur")

    # Spans must nest within each thread: sweep sorted by (start, -end); a
    # span starting inside an open span must also end inside it.
    by_tid = {}
    for event in events:
        by_tid.setdefault(event["tid"], []).append(event)
    for tid, spans in by_tid.items():
        spans.sort(key=lambda e: (e["ts"], -(e["ts"] + e["dur"])))
        stack = []
        for span in spans:
            end = span["ts"] + span["dur"]
            while stack and stack[-1][1] <= span["ts"]:
                stack.pop()
            if stack and end > stack[-1][1] + 1e-3:  # 1 us tolerance
                fail(
                    f"{path}: tid {tid}: span {span['name']!r} "
                    f"[{span['ts']:.3f}, {end:.3f}] escapes enclosing "
                    f"{stack[-1][0]!r} ending at {stack[-1][1]:.3f}"
                )
            stack.append((span["name"], end))

    discovery = [e for e in events if e["name"].startswith("discovery:")]
    stages = [e for e in events if e["name"].startswith("stage:")]
    if expect_discovery is not None and len(discovery) != expect_discovery:
        fail(
            f"{path}: {len(discovery)} discovery spans, "
            f"expected {expect_discovery}"
        )
    if discovery and not stages:
        fail(f"{path}: discovery spans present but no stage spans")
    if discovery and stages:
        # Stages run inside discoveries (serial per discovery when
        # bench_threads=1), so summed stage time must account for nearly all
        # discovery wall time; the gap is fork/merge overhead. 5% band per
        # the acceptance criterion, measured over the whole file.
        discovery_total = sum(e["dur"] for e in discovery)
        stage_total = sum(e["dur"] for e in stages)
        if discovery_total <= 0:
            fail(f"{path}: zero total discovery duration")
        ratio = stage_total / discovery_total
        if not 0.95 <= ratio <= 1.05:
            fail(
                f"{path}: stage spans sum to {stage_total:.1f} us vs "
                f"{discovery_total:.1f} us of discovery spans "
                f"(ratio {ratio:.3f}, expected within [0.95, 1.05])"
            )
        print(
            f"check_obs: {path}: {len(events)} events, "
            f"{len(discovery)} discoveries, {len(stages)} stages, "
            f"stage/discovery wall ratio {ratio:.3f}"
        )
    else:
        print(f"check_obs: {path}: {len(events)} events")


METRIC_LINE = re.compile(
    r"^mt4g_[A-Za-z0-9_]+ -?(\d+(\.\d+)?([eE][+-]?\d+)?|inf|nan)$"
)
TYPE_LINE = re.compile(r"^# TYPE mt4g_[A-Za-z0-9_]+ (counter|gauge|summary)$")


def check_metrics(path, require):
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not any(line and not line.startswith("#") for line in lines):
        fail(f"{path}: no metric samples")
    names = set()
    for i, line in enumerate(lines, 1):
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE") and not TYPE_LINE.match(line):
                fail(f"{path}:{i}: malformed TYPE line: {line!r}")
            continue
        if not METRIC_LINE.match(line):
            fail(f"{path}:{i}: malformed sample line: {line!r}")
        names.add(line.split(" ", 1)[0])
    for name in require:
        if name not in names:
            fail(f"{path}: required metric {name!r} missing (have {sorted(names)})")
    print(f"check_obs: {path}: {len(names)} metric series ok")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)
    trace = sub.add_parser("trace")
    trace.add_argument("file")
    trace.add_argument("--expect-discovery", type=int, default=None)
    metrics = sub.add_parser("metrics")
    metrics.add_argument("file")
    metrics.add_argument("--require", nargs="*", default=[])
    args = parser.parse_args()
    if args.mode == "trace":
        check_trace(args.file, args.expect_discovery)
    else:
        check_metrics(args.file, args.require)


if __name__ == "__main__":
    main()
