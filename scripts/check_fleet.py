#!/usr/bin/env python3
"""CI assertions over fleet_report.json (the chaos smoke job's oracle).

Subcommands:
  compare A B [--scrub key,...]   deep-equal after removing volatile keys
  degraded REPORT [--expect N] [--reason R] [--match SUBSTR]
                                  assert the degraded block's shape

`compare` is how CI checks the tentpole determinism property end to end: a
fleet run under a transient fault plan must produce the same aggregate report
as the fault-free run once the volatile keys — host wall time and the retry
counters that *record* the recovery — are scrubbed. Everything else (matrix,
coverage, per-model values, failures, degraded) must match byte-for-byte.
"""

import argparse
import json
import sys

# Keys whose values legitimately differ between a clean run and a recovered
# run: host timing, and the counters that exist to record the recovery.
DEFAULT_SCRUB = ("wall_seconds", "retries", "retried", "worker_crashes")


def scrub(value, keys):
    if isinstance(value, dict):
        return {k: scrub(v, keys) for k, v in value.items() if k not in keys}
    if isinstance(value, list):
        return [scrub(v, keys) for v in value]
    return value


def diff_paths(a, b, path="$"):
    """Yields human-readable paths where two scrubbed documents differ."""
    if type(a) is not type(b):
        yield f"{path}: type {type(a).__name__} != {type(b).__name__}"
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                yield f"{path}.{key}: only in B"
            elif key not in b:
                yield f"{path}.{key}: only in A"
            else:
                yield from diff_paths(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, list):
        if len(a) != len(b):
            yield f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            yield from diff_paths(x, y, f"{path}[{i}]")
    elif a != b:
        yield f"{path}: {a!r} != {b!r}"


def load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def cmd_compare(args):
    keys = tuple(args.scrub.split(",")) if args.scrub else DEFAULT_SCRUB
    a = scrub(load(args.a), keys)
    b = scrub(load(args.b), keys)
    differences = list(diff_paths(a, b))
    if differences:
        print(f"check_fleet compare: {args.a} != {args.b} "
              f"(scrubbed {','.join(keys)}):")
        for line in differences[:40]:
            print(f"  {line}")
        return 1
    print(f"check_fleet compare: {args.a} == {args.b} "
          f"(scrubbed {','.join(keys)})")
    return 0


def cmd_degraded(args):
    report = load(args.report)
    degraded = report.get("degraded", [])
    problems = []
    if args.expect is not None and len(degraded) != args.expect:
        problems.append(
            f"expected {args.expect} degraded job(s), found {len(degraded)}")
    for entry in degraded:
        if args.reason and entry.get("reason") != args.reason:
            problems.append(
                f"job {entry.get('job', '?')}: reason "
                f"{entry.get('reason')!r}, wanted {args.reason!r}")
        if args.match and args.match not in entry.get("job", ""):
            problems.append(
                f"job {entry.get('job', '?')} does not match {args.match!r}")
    summary = report.get("summary", {})
    accounted = summary.get("failed", 0) + summary.get("skipped", 0)
    if len(degraded) != accounted:
        problems.append(
            f"degraded lists {len(degraded)} job(s) but the summary counts "
            f"{accounted} failed+skipped — the report hides holes")
    if problems:
        print(f"check_fleet degraded: {args.report}:")
        for line in problems:
            print(f"  {line}")
        return 1
    print(f"check_fleet degraded: {args.report} ok "
          f"({len(degraded)} degraded job(s))")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="deep-equal two fleet reports")
    compare.add_argument("a")
    compare.add_argument("b")
    compare.add_argument("--scrub", default=None,
                         help=f"comma-separated volatile keys "
                              f"(default {','.join(DEFAULT_SCRUB)})")
    compare.set_defaults(func=cmd_compare)

    degraded = sub.add_parser("degraded", help="assert the degraded block")
    degraded.add_argument("report")
    degraded.add_argument("--expect", type=int, default=None,
                          help="exact number of degraded jobs")
    degraded.add_argument("--reason", default=None,
                          help="required reason of every degraded job")
    degraded.add_argument("--match", default=None,
                          help="substring every degraded job key must contain")
    degraded.set_defaults(func=cmd_degraded)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
